"""Lightweight per-phase profiling of the fixpoint kernel.

Every kernel run owns a :class:`KernelProfile` and charges its four phases
to it — *offer* (binding enumeration + meta-cache hits), *dispatch*
(dispatcher refills and steps, i.e. simulated-event or real scheduling),
*absorb* (folding completions into the caches), and *answer-check*
(incremental/full query evaluation) — together with the counters that make
a regression diagnosable without external tools: offer passes, dispatcher
steps, completions and completion batches, and how many answer checks ran
incrementally vs. as full evaluations.

The profile travels with the run's result (``Result.to_dict()["profile"]``,
``explain()``, the ``--profile`` CLI flag) and engine sessions aggregate the
profiles of their executions under ``session.stats()["kernel"]``.  The
instrumentation is a pair of ``perf_counter`` reads per phase transition —
cheap enough to stay on permanently.
"""

from __future__ import annotations

from typing import Dict, List

_TIMINGS = (
    "offer_seconds",
    "dispatch_seconds",
    "absorb_seconds",
    "answer_check_seconds",
)

_COUNTERS = (
    "offer_passes",
    "dispatch_steps",
    "completions",
    "completion_batches",
    "answer_checks",
    "incremental_checks",
    "full_checks",
    "answers_streamed",
)


class KernelProfile:
    """Per-phase timings and counters of one (or many merged) kernel runs."""

    __slots__ = _TIMINGS + _COUNTERS + ("runs", "max_batch")

    def __init__(self) -> None:
        self.offer_seconds = 0.0
        self.dispatch_seconds = 0.0
        self.absorb_seconds = 0.0
        self.answer_check_seconds = 0.0
        self.offer_passes = 0
        self.dispatch_steps = 0
        self.completions = 0
        self.completion_batches = 0
        self.answer_checks = 0
        self.incremental_checks = 0
        self.full_checks = 0
        self.answers_streamed = 0
        #: Kernel runs folded into this profile (1 for a single execution).
        self.runs = 1
        #: Largest completion batch absorbed in one dispatcher step.
        self.max_batch = 0

    # -- aggregation ---------------------------------------------------------
    def merge(self, other: "KernelProfile") -> None:
        """Fold another run's profile into this one (session aggregation)."""
        for name in _TIMINGS + _COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.runs += other.runs
        self.max_batch = max(self.max_batch, other.max_batch)

    @property
    def total_seconds(self) -> float:
        return (
            self.offer_seconds
            + self.dispatch_seconds
            + self.absorb_seconds
            + self.answer_check_seconds
        )

    # -- rendering -----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        timings = {
            name[: -len("_seconds")]: round(getattr(self, name), 6) for name in _TIMINGS
        }
        counters = {name: getattr(self, name) for name in _COUNTERS}
        counters["max_batch"] = self.max_batch
        return {
            "runs": self.runs,
            "timings_seconds": timings,
            "counters": counters,
        }

    def describe(self) -> List[str]:
        """Human-readable breakdown, one line per phase (CLI ``--profile``)."""
        total = self.total_seconds or 1.0
        lines = ["kernel profile:"]
        for label, seconds, detail in (
            ("offer", self.offer_seconds, f"{self.offer_passes} passes"),
            ("dispatch", self.dispatch_seconds, f"{self.dispatch_steps} steps"),
            (
                "absorb",
                self.absorb_seconds,
                f"{self.completions} completions / "
                f"{self.completion_batches} batches (max {self.max_batch})",
            ),
            (
                "answer-check",
                self.answer_check_seconds,
                f"{self.incremental_checks} incremental + {self.full_checks} full",
            ),
        ):
            share = 100.0 * seconds / total
            lines.append(f"  {label:<13} {seconds * 1000.0:9.2f} ms  {share:5.1f}%  ({detail})")
        lines.append(
            f"  answers streamed: {self.answers_streamed}; "
            f"kernel runs folded: {self.runs}"
        )
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelProfile(total={self.total_seconds:.4f}s, "
            f"steps={self.dispatch_steps}, completions={self.completions})"
        )
