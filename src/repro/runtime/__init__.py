"""The shared fixpoint runtime: one kernel, pluggable policies and dispatchers.

The paper's three evaluation methods — naive extraction (Figure 1), the
fast-failing minimal-plan execution (Section IV) and parallel distillation
(Section V) — are one algorithm: iterate cache rules to a least fixpoint
under access limitations.  They differ only in *what* is dispatched *when*.
This package is that one algorithm, factored once:

* :class:`~repro.runtime.kernel.FixpointKernel` — the event-driven fixpoint
  loop.  It owns offer-pass iteration, budget accounting, the monotone
  clock, and incremental answer tracking/streaming.
* :class:`~repro.runtime.policy.SchedulingPolicy` — what to dispatch:
  :class:`~repro.runtime.policy.EagerAllRelations` (naive),
  :class:`~repro.runtime.policy.OrderedFastFail` (fast-failing),
  :class:`~repro.runtime.policy.SimulatedParallel` /
  :class:`~repro.runtime.policy.RealThreadPool` (distillation).
* :class:`~repro.runtime.dispatch.Dispatcher` — when/how accesses run:
  :class:`~repro.runtime.dispatch.SequentialDispatcher` (one at a time on a
  cumulative simulated clock),
  :class:`~repro.runtime.dispatch.SimulatedParallelDispatcher` (the
  deterministic discrete-event simulation on a completion-event heap) and
  :class:`~repro.runtime.dispatch.ThreadPoolDispatcher` (real concurrent
  accesses against the backends).

The modules under :mod:`repro.plan` (``naive``, ``execution``,
``parallel``) are thin adapters: they pick a policy, run the kernel, and
shape its outcome into their historical result types.
"""

from repro.runtime.dispatch import (
    AccessOutcome,
    Dispatcher,
    SequentialDispatcher,
    SimulatedParallelDispatcher,
    ThreadPoolDispatcher,
)
from repro.runtime.kernel import (
    AccessBudget,
    AccessRequest,
    AnswerTracker,
    Completion,
    FixpointKernel,
    KernelOutcome,
    StreamedAnswer,
)
from repro.runtime.policy import (
    EagerAllRelations,
    OrderedFastFail,
    RealThreadPool,
    SchedulingPolicy,
    SimulatedParallel,
)

__all__ = [
    "AccessBudget",
    "AccessOutcome",
    "AccessRequest",
    "AnswerTracker",
    "Completion",
    "Dispatcher",
    "EagerAllRelations",
    "FixpointKernel",
    "KernelOutcome",
    "OrderedFastFail",
    "RealThreadPool",
    "SchedulingPolicy",
    "SequentialDispatcher",
    "SimulatedParallel",
    "SimulatedParallelDispatcher",
    "StreamedAnswer",
    "ThreadPoolDispatcher",
]
