"""A loopback JSON lookup server for tests, CI and benchmarks.

Serves a :class:`~repro.model.instance.DatabaseInstance` over the HTTP
protocol that :class:`~repro.sources.http.HTTPBackend` speaks (see that
module for the wire format).  The server is a single ``asyncio``
process-local event loop handling keep-alive HTTP/1.1 connections, so it
sustains hundreds of concurrent in-flight lookups — which is exactly what
the async dispatcher's high in-flight benchmark needs from a fixture.

Two entry points:

* ``python -m repro serve-fixture --scenario star:rays=4`` runs it as a
  standalone process (CI's ``http-smoke`` job);
* :class:`FixtureServer` runs it on a background thread inside the test
  process, exposing ``.url`` for the engine under test::

      with FixtureServer(example.instance) as server:
          registry = SourceRegistry(example.instance, backend=server.url)

``--latency`` injects ``await asyncio.sleep(...)`` per lookup — concurrent
requests overlap their sleeps, a sequential client pays them back to back.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional, Tuple

from repro.model.instance import DatabaseInstance

_MAX_BODY = 8 * 1024 * 1024


def _response(status: int, payload: dict) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(status, "Error")
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n"
        "\r\n"
    ).encode("ascii") + body


class _FixtureProtocol:
    """Request handling shared by the CLI server and the in-process helper."""

    def __init__(self, instance: DatabaseInstance, latency: float = 0.0) -> None:
        self.instance = instance
        self.latency = latency

    async def _lookup(self, relation: str, binding: Tuple[object, ...]) -> list:
        if self.latency > 0:
            await asyncio.sleep(self.latency)
        rows = self.instance.relation(relation).lookup(binding)
        return [list(row) for row in sorted(rows, key=repr)]

    async def _dispatch(self, method: str, path: str, body: bytes) -> bytes:
        if method == "GET" and path == "/health":
            return _response(200, {"status": "ok"})
        if method != "POST" or path not in ("/lookup", "/lookup_many"):
            return _response(404, {"error": f"no route {method} {path}"})
        try:
            payload = json.loads(body)
        except ValueError:
            return _response(400, {"error": "body is not valid JSON"})
        relation = payload.get("relation")
        if not isinstance(relation, str) or relation not in self.instance.schema:
            return _response(404, {"error": f"unknown relation {relation!r}"})
        try:
            if path == "/lookup":
                binding = tuple(payload.get("binding") or ())
                return _response(200, {"rows": await self._lookup(relation, binding)})
            bindings = payload.get("bindings")
            if not isinstance(bindings, list):
                return _response(400, {"error": "'bindings' must be a list"})
            results = [
                await self._lookup(relation, tuple(binding or ())) for binding in bindings
            ]
            return _response(200, {"results": results})
        except Exception as error:  # noqa: BLE001 - surface as a 400, not a hang
            return _response(400, {"error": str(error)})

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.split()
                if len(parts) < 2:
                    break
                method, path = parts[0].decode("ascii"), parts[1].decode("ascii")
                content_length = 0
                keep_alive = True
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.partition(b":")
                    name = name.strip().lower()
                    if name == b"content-length":
                        content_length = int(value.strip())
                    elif name == b"connection" and value.strip().lower() == b"close":
                        keep_alive = False
                if content_length > _MAX_BODY:
                    writer.write(_response(400, {"error": "body too large"}))
                    await writer.drain()
                    break
                body = await reader.readexactly(content_length) if content_length else b""
                writer.write(await self._dispatch(method, path, body))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels parked keep-alive handlers; finish normally so
            # the stream protocol's done-callback doesn't re-raise at teardown.
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass


async def start_fixture_server(
    instance: DatabaseInstance,
    host: str = "127.0.0.1",
    port: int = 0,
    latency: float = 0.0,
) -> "asyncio.base_events.Server":
    """Start the lookup server on the running loop; returns the asyncio server."""
    protocol = _FixtureProtocol(instance, latency=latency)
    return await asyncio.start_server(protocol.handle, host, port)


def _bound_port(server: "asyncio.base_events.Server") -> int:
    return server.sockets[0].getsockname()[1]


async def serve_forever(
    instance: DatabaseInstance,
    host: str = "127.0.0.1",
    port: int = 0,
    latency: float = 0.0,
) -> None:
    """Run the fixture server until cancelled, printing its URL (flushed)."""
    server = await start_fixture_server(instance, host, port, latency=latency)
    print(f"http://{host}:{_bound_port(server)}", flush=True)
    async with server:
        await server.serve_forever()


class FixtureServer:
    """The lookup server on a background thread, for in-process tests.

    The server's event loop lives on its own daemon thread, so the test
    (or benchmark) can drive engines — sync or async — against ``.url``
    from the main thread.  Context-manager enter/exit start and stop it;
    :meth:`close` is idempotent.
    """

    def __init__(
        self,
        instance: DatabaseInstance,
        host: str = "127.0.0.1",
        latency: float = 0.0,
    ) -> None:
        self.instance = instance
        self.host = host
        self.latency = latency
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[object] = None
        self._started = threading.Event()
        self._closed = False

    @property
    def url(self) -> str:
        if self.port is None:
            raise RuntimeError("fixture server is not running; call start()")
        return f"http://{self.host}:{self.port}"

    def start(self) -> "FixtureServer":
        if self._thread is not None:
            return self
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            assert self._loop is not None
            asyncio.set_event_loop(self._loop)

            async def boot() -> None:
                self._server = await start_fixture_server(
                    self.instance, self.host, 0, latency=self.latency
                )
                self.port = _bound_port(self._server)
                self._started.set()

            try:
                self._loop.run_until_complete(boot())
                self._loop.run_forever()
            finally:
                self._started.set()  # unblock start() even on boot failure
                try:
                    self._loop.close()
                except Exception:
                    pass

        self._thread = threading.Thread(target=run, name="repro-fixture", daemon=True)
        self._thread.start()
        self._started.wait(timeout=10)
        if self.port is None:
            raise RuntimeError("fixture server failed to start")
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        loop, self._loop = self._loop, None
        if loop is None:
            return

        async def shutdown() -> None:
            if self._server is not None:
                self._server.close()
            # Idle keep-alive handlers are parked on readline(); cancel them
            # and let the cancellations land before stopping the loop, so it
            # closes without "Task was destroyed" warnings.
            tasks = [
                task
                for task in asyncio.all_tasks(loop)
                if task is not asyncio.current_task()
            ]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            loop.stop()

        try:
            asyncio.run_coroutine_threadsafe(shutdown(), loop)
        except RuntimeError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "FixtureServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
