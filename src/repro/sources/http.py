"""An HTTP source backend: accesses become JSON POSTs to a remote service.

This is the backend the paper actually models — data behind a remote,
access-limited interface — speaking a deliberately tiny protocol:

* ``POST /lookup`` with ``{"relation": NAME, "binding": [v, ...]}``
  answers ``{"rows": [[v, ...], ...]}``;
* ``POST /lookup_many`` with ``{"relation": NAME, "bindings": [[...], ...]}``
  answers ``{"results": [[[...], ...], ...]}`` (one row list per binding,
  in order — the batching path);
* ``GET /health`` answers ``{"status": "ok"}``.

:class:`HTTPBackend` implements both faces of the source layer: the sync
:meth:`lookup` (thread-pooled dispatch) over per-thread keep-alive
``http.client`` connections, and the native async :meth:`alookup` (event-
loop dispatch) over a pool of ``asyncio`` stream connections, so hundreds
of requests can be in flight on one loop.  Values are restricted to what
JSON round-trips losslessly — ``str``/``int``/``float``, with ``bool``
rejected like the SQLite backend rejects it — so cross-backend equivalence
can never silently break.

Transport errors surface as
:class:`~repro.sources.resilience.TransientSourceError` (after one
internal reconnect, which absorbs stale keep-alive connections without
consuming a retry attempt), so the resilience layer's retry/breaker
policy governs HTTP flakiness exactly as it governs injected faults.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from typing import FrozenSet, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.exceptions import AccessError
from repro.model.schema import RelationSchema
from repro.sources.backend import SourceBackend

Row = Tuple[object, ...]
Binding = Tuple[object, ...]

_StreamPair = Tuple[asyncio.StreamReader, asyncio.StreamWriter]


def parse_http_url(url: str) -> Tuple[str, str, int, str]:
    """Split an ``http[s]://HOST[:PORT][/path]`` spec; raises on bad URLs."""
    parts = urlsplit(url)
    try:
        # .port raises ValueError on a non-numeric or out-of-range port.
        scheme, hostname, port = parts.scheme, parts.hostname, parts.port
    except ValueError as error:
        raise AccessError(f"bad HTTP backend URL {url!r}: {error}") from error
    if scheme not in ("http", "https") or not hostname:
        raise AccessError(
            f"bad HTTP backend URL {url!r}; expected http://HOST:PORT or "
            "https://HOST:PORT"
        )
    if port is None:
        port = 443 if scheme == "https" else 80
    return scheme, hostname, port, parts.path.rstrip("/")


class HTTPBackend(SourceBackend):
    """One relation answered over the JSON lookup protocol."""

    kind = "http"

    def __init__(self, schema: RelationSchema, url: str) -> None:
        self.schema = schema
        self.url = url
        self._scheme, self._host, self._port, self._base = parse_http_url(url)
        self._lock = threading.Lock()
        self._closed = False
        # Sync path: one keep-alive connection per thread, all tracked so
        # close() can tear them down regardless of which thread made them.
        self._local = threading.local()
        self._sync_conns: List[http.client.HTTPConnection] = []
        # Async path: idle keep-alive stream connections, valid only on the
        # loop that opened them (asyncio transports are loop-bound).
        self._pool: List[_StreamPair] = []
        self._pool_loop: Optional[asyncio.AbstractEventLoop] = None

    # -- shared plumbing -------------------------------------------------------
    def _fault(self, binding: Binding, detail: str) -> "AccessError":
        from repro.sources.resilience import TransientSourceError

        return TransientSourceError(self.schema.name, tuple(binding), detail)

    def _check_open(self) -> None:
        if self._closed:
            raise AccessError(
                f"HTTP backend for {self.schema.name!r} is closed; "
                "no further accesses are possible"
            )

    def _decode(self, status: int, body: bytes, binding: Binding) -> dict:
        if status != 200:
            detail = body.decode("utf-8", "replace").strip() or f"HTTP {status}"
            if 400 <= status < 500:
                raise AccessError(
                    f"HTTP backend for {self.schema.name!r} rejected the "
                    f"request ({status}): {detail}"
                )
            raise self._fault(binding, f"HTTP {status}: {detail}")
        try:
            payload = json.loads(body)
        except ValueError:
            raise self._fault(binding, "response is not valid JSON") from None
        if not isinstance(payload, dict):
            raise self._fault(binding, "response is not a JSON object")
        return payload

    def _parse_rows(self, raw: object) -> FrozenSet[Row]:
        if not isinstance(raw, list):
            raise AccessError(
                f"HTTP backend for {self.schema.name!r} returned malformed rows"
            )
        rows = []
        for row in raw:
            if not isinstance(row, list):
                raise AccessError(
                    f"HTTP backend for {self.schema.name!r} returned a "
                    f"non-list row {row!r}"
                )
            for value in row:
                if isinstance(value, bool) or not isinstance(value, (str, int, float)):
                    raise AccessError(
                        f"HTTP backend for {self.schema.name!r} cannot carry "
                        f"{value!r} ({type(value).__name__}); use str/int/float"
                    )
            rows.append(tuple(row))
        return frozenset(rows)

    # -- sync path (thread-pool and sequential dispatch) -----------------------
    def _sync_connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = self._open_sync_connection()
        return conn

    def _open_sync_connection(self) -> http.client.HTTPConnection:
        factory = (
            http.client.HTTPSConnection
            if self._scheme == "https"
            else http.client.HTTPConnection
        )
        conn = factory(self._host, self._port)
        self._local.conn = conn
        with self._lock:
            self._sync_conns.append(conn)
        return conn

    def _drop_sync_connection(self, conn: http.client.HTTPConnection) -> None:
        try:
            conn.close()
        except Exception:
            pass
        with self._lock:
            if conn in self._sync_conns:
                self._sync_conns.remove(conn)
        if getattr(self._local, "conn", None) is conn:
            self._local.conn = None

    def _post(self, path: str, payload: dict, binding: Binding) -> dict:
        self._check_open()
        body = json.dumps(payload).encode("utf-8")
        conn = self._sync_connection()
        for attempt in (0, 1):
            try:
                conn.request(
                    "POST",
                    self._base + path,
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                data = response.read()
                return self._decode(response.status, data, binding)
            except (OSError, http.client.HTTPException) as error:
                # A stale keep-alive connection fails on reuse; reconnect
                # once before reporting a (retryable) source fault.
                self._drop_sync_connection(conn)
                if attempt:
                    raise self._fault(binding, f"connection failed: {error}") from None
                conn = self._open_sync_connection()
        raise AssertionError("unreachable")  # pragma: no cover

    def lookup(self, binding: Binding) -> FrozenSet[Row]:
        binding = tuple(binding)
        payload = self._post(
            "/lookup", {"relation": self.schema.name, "binding": list(binding)}, binding
        )
        return self._parse_rows(payload.get("rows"))

    def lookup_many(self, bindings: Sequence[Binding]) -> List[FrozenSet[Row]]:
        batch = [tuple(binding) for binding in bindings]
        if not batch:
            return []
        payload = self._post(
            "/lookup_many",
            {"relation": self.schema.name, "bindings": [list(b) for b in batch]},
            batch[0],
        )
        results = payload.get("results")
        if not isinstance(results, list) or len(results) != len(batch):
            raise AccessError(
                f"HTTP backend for {self.schema.name!r} returned "
                f"{0 if not isinstance(results, list) else len(results)} batch "
                f"results for {len(batch)} bindings"
            )
        return [self._parse_rows(raw) for raw in results]

    # -- async path (event-loop dispatch) --------------------------------------
    def _pool_take(self) -> Optional[_StreamPair]:
        """An idle connection for the *current* loop, invalidating stale pools."""
        loop = asyncio.get_running_loop()
        with self._lock:
            if self._pool_loop is not loop:
                stale, self._pool = self._pool, []
                self._pool_loop = loop
            else:
                stale = []
            conn = self._pool.pop() if self._pool else None
        for _, writer in stale:
            try:
                writer.close()
            except Exception:
                pass
        return conn

    def _pool_put(self, conn: _StreamPair) -> None:
        with self._lock:
            if not self._closed and self._pool_loop is asyncio.get_running_loop():
                self._pool.append(conn)
                return
        try:
            conn[1].close()
        except Exception:
            pass

    async def _aconnect(self) -> _StreamPair:
        return await asyncio.open_connection(
            self._host, self._port, ssl=self._scheme == "https"
        )

    async def _roundtrip(self, conn: _StreamPair, path: str, body: bytes) -> Tuple[int, bytes]:
        reader, writer = conn
        request = (
            f"POST {self._base + path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
        ).encode("ascii") + body
        writer.write(request)
        await writer.drain()
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ValueError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                content_length = int(value.strip())
        data = await reader.readexactly(content_length) if content_length else b""
        return status, data

    async def _apost(self, path: str, payload: dict, binding: Binding) -> dict:
        self._check_open()
        body = json.dumps(payload).encode("utf-8")
        conn = self._pool_take()
        fresh = conn is None
        for attempt in (0, 1):
            if conn is None:
                try:
                    conn = await self._aconnect()
                except OSError as error:
                    raise self._fault(binding, f"cannot connect: {error}") from None
                fresh = True
            try:
                status, data = await self._roundtrip(conn, path, body)
            except (OSError, asyncio.IncompleteReadError, ValueError) as error:
                try:
                    conn[1].close()
                except Exception:
                    pass
                conn = None
                if fresh or attempt:
                    raise self._fault(binding, f"connection failed: {error}") from None
                continue
            self._pool_put(conn)
            return self._decode(status, data, binding)
        raise AssertionError("unreachable")  # pragma: no cover

    async def alookup(self, binding: Binding) -> FrozenSet[Row]:
        binding = tuple(binding)
        payload = await self._apost(
            "/lookup", {"relation": self.schema.name, "binding": list(binding)}, binding
        )
        return self._parse_rows(payload.get("rows"))

    async def alookup_many(self, bindings: Sequence[Binding]) -> List[FrozenSet[Row]]:
        batch = [tuple(binding) for binding in bindings]
        if not batch:
            return []
        payload = await self._apost(
            "/lookup_many",
            {"relation": self.schema.name, "bindings": [list(b) for b in batch]},
            batch[0],
        )
        results = payload.get("results")
        if not isinstance(results, list) or len(results) != len(batch):
            raise AccessError(
                f"HTTP backend for {self.schema.name!r} returned "
                f"{0 if not isinstance(results, list) else len(results)} batch "
                f"results for {len(batch)} bindings"
            )
        return [self._parse_rows(raw) for raw in results]

    # -- teardown --------------------------------------------------------------
    def close(self) -> None:
        """Drop every pooled connection; idempotent, never raises.

        Safe to call twice, after a failed request, or with the owning
        event loop already gone — transports whose loop is closed are
        abandoned (the OS reclaims the sockets with the process) rather
        than raised over.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sync_conns, self._sync_conns = self._sync_conns, []
            pool, self._pool = self._pool, []
            self._pool_loop = None
        for conn in sync_conns:
            try:
                conn.close()
            except Exception:
                pass
        for _, writer in pool:
            try:
                writer.close()
            except Exception:
                pass
