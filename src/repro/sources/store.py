"""Pluggable cache stores: where the "never repeat an access" domain lives.

The paper's central invariant — an access tuple is shipped to a source at
most once — is enforced by the per-relation meta-caches of
:mod:`repro.sources.cache`.  Historically those meta-caches were plain
in-process dictionaries: they died with the process (a restarted engine
re-paid every access) and grew without bound.  This module extracts the
storage behind them into a :class:`CacheStore` interface with two tiers:

* the **binding tier** — ``(relation, binding) → rows`` records plus the
  cross-execution *claim* table that makes concurrent executions (and, for
  the persistent store, concurrent *processes*) agree on a single owner per
  access;
* the **result tier** — ``canonical query shape → answers``, letting a
  repeated (alpha-equivalent) query skip the fixpoint entirely.  See
  :func:`repro.query.minimize.canonical_form`.

Two implementations are provided:

* :class:`MemoryCacheStore` — the default.  With the default knobs
  (no TTL, no entry bound) it behaves byte-identically to the historical
  dictionaries; optional TTL / LRU bounds turn it into a size-capped cache.
* :class:`SQLiteCacheStore` — a persistent store (SQLite in WAL mode).  A
  restarted engine warm-starts from every access recorded by its
  predecessors, and N processes pointed at one database file share a single
  access domain: the claim table extends the PR-4 claim/abandon protocol
  across processes, with *stale-claimant takeover* so a crashed owner never
  wedges the others.

Eviction semantics (both stores): evicting a binding record is **not** a
correctness bug — it merely forgets that the access was performed, so a
later execution re-performs it.  The claim gate then hands ownership to a
new claimant, the access is re-counted by :class:`~repro.runtime.kernel.
AccessBudget` as a genuine new access, and the recorded rows re-enter the
store.  Claims themselves are never evicted (only fulfilled, abandoned, or
taken over when stale), and the meta-caches' in-process row *union* remains
append-only, so already-derived answers are never retracted.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, replace
from enum import Enum
from typing import Callable, Dict, FrozenSet, Optional, Tuple, Union

from repro.exceptions import EngineError
from repro.model.schema import RelationSchema

Row = Tuple[object, ...]
Binding = Tuple[object, ...]


class CacheStoreError(EngineError):
    """A cache store is misconfigured or incompatible with the engine.

    Raised, for instance, when a persistent store created over one source
    schema is attached to an engine with a different one (serving another
    schema's rows would silently violate correctness), or when a value
    cannot be round-tripped through the store's serialization.
    """


class ClaimStatus(Enum):
    """Outcome of asking the store for ownership of one access."""

    #: The caller owns the access and must record or release it.
    OWNED = "owned"
    #: The access is already recorded; the rows are returned alongside.
    SERVED = "served"
    #: Another *process* holds a live claim; poll again shortly.
    WAIT = "wait"


@dataclass(frozen=True)
class CacheConfig:
    """Declarative configuration of an engine's cache-store tier.

    ``store`` selects the backing implementation (``"memory"`` or
    ``"sqlite"``, the latter requiring ``path``).  ``ttl`` and
    ``max_entries`` bound the binding *and* result tiers (``None`` means
    unbounded — the default, which preserves the historical behaviour
    exactly).  ``result_cache`` switches on the query-result tier; it is
    off by default because a result-tier hit answers a query with zero
    accesses, which changes access counts relative to a cold engine.
    """

    store: str = "memory"
    path: Optional[str] = None
    ttl: Optional[float] = None
    max_entries: Optional[int] = None
    result_cache: bool = False
    #: Seconds after which another process's unfulfilled claim may be
    #: taken over (the claimant is presumed dead).
    stale_claim_after: float = 10.0
    #: Seconds between polls while waiting out another process's claim.
    claim_poll_interval: float = 0.01

    @classmethod
    def parse(cls, spec: str, **overrides: object) -> "CacheConfig":
        """Build a config from a CLI-style spec: ``memory`` or ``sqlite:PATH``."""
        spec = spec.strip()
        if spec == "memory":
            config = cls()
        elif spec.startswith("sqlite:"):
            path = spec[len("sqlite:") :]
            if not path:
                raise CacheStoreError("sqlite cache store needs a path: sqlite:PATH")
            config = cls(store="sqlite", path=path)
        elif spec == "sqlite":
            raise CacheStoreError("sqlite cache store needs a path: sqlite:PATH")
        else:
            raise CacheStoreError(
                f"unknown cache store {spec!r}; use 'memory' or 'sqlite:PATH'"
            )
        return replace(config, **overrides) if overrides else config

    @classmethod
    def coerce(
        cls, value: Union[None, str, "CacheConfig", "CacheStore"]
    ) -> Tuple["CacheConfig", Optional["CacheStore"]]:
        """Normalize the ``Engine(cache=...)`` argument.

        Accepts ``None`` (defaults), a spec string, a :class:`CacheConfig`,
        or a ready :class:`CacheStore` instance (returned as the second
        element so the engine can adopt it as-is).
        """
        if value is None:
            return cls(), None
        if isinstance(value, CacheStore):
            return cls(store=value.kind, result_cache=value.result_cache), value
        if isinstance(value, str):
            return cls.parse(value), None
        if isinstance(value, CacheConfig):
            return value, None
        raise CacheStoreError(
            f"cache must be None, a spec string, a CacheConfig or a CacheStore, "
            f"not {type(value).__name__}"
        )


class RelationRecords(ABC):
    """Per-relation handle onto a store's binding tier.

    One instance backs one :class:`~repro.sources.cache.MetaCache`; all
    methods must be safe to call concurrently (the store serializes
    internally).
    """

    @abstractmethod
    def get(self, binding: Binding, touch: bool = True) -> Optional[FrozenSet[Row]]:
        """The recorded rows for a binding, or None.

        ``touch`` marks the entry as recently used (LRU) and counts a
        store-level hit; pass False for pure inspection.
        """

    @abstractmethod
    def contains(self, binding: Binding) -> bool:
        """Whether the binding is recorded (no hit counted, no LRU touch)."""

    @abstractmethod
    def put(self, binding: Binding, rows: FrozenSet[Row]) -> None:
        """Record one performed access, releasing any claim on the binding."""

    @abstractmethod
    def claim(self, binding: Binding) -> Tuple[ClaimStatus, Optional[FrozenSet[Row]]]:
        """Ask for cross-process ownership of one access (see :class:`ClaimStatus`)."""

    @abstractmethod
    def release(self, binding: Binding) -> None:
        """Give up an owned claim without recording (the access failed)."""

    @abstractmethod
    def bindings(self) -> FrozenSet[Binding]:
        """All recorded bindings."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of recorded bindings."""


class CacheStore(ABC):
    """Two-tier cache storage shared by all executions of an engine session."""

    #: Store flavour, e.g. ``"memory"`` or ``"sqlite"``.
    kind: str = "abstract"
    #: Whether records survive the process (drives warm-start stats wiring).
    persistent: bool = False
    #: Whether the query-result tier is enabled.
    result_cache: bool = False

    @abstractmethod
    def records(self, relation: RelationSchema) -> RelationRecords:
        """The binding-tier handle for one relation."""

    # -- result tier -------------------------------------------------------
    @abstractmethod
    def lookup_result(self, key: str) -> Optional[FrozenSet[Row]]:
        """Cached answers for a canonical query key, or None."""

    @abstractmethod
    def record_result(self, key: str, answers: FrozenSet[Row]) -> None:
        """Cache the complete answers of one query under its canonical key."""

    # -- persistence hooks -------------------------------------------------
    def persisted_hit_counters(self) -> Dict[str, int]:
        """Per-relation hit counts accumulated by *previous* processes."""
        return {}

    def check_fingerprint(self, fingerprint: str) -> None:
        """Bind the store to one source-schema fingerprint (no-op if volatile)."""

    # -- bookkeeping -------------------------------------------------------
    @abstractmethod
    def stats(self) -> Dict[str, object]:
        """Monotone (per-process) counters plus entry gauges, for reports."""

    @abstractmethod
    def clear(self) -> None:
        """Drop every record, claim and cached result."""

    def close(self) -> None:
        """Release external resources (idempotent)."""


def _expired(stamp: float, ttl: Optional[float], now: float) -> bool:
    return ttl is not None and now - stamp > ttl


@dataclass
class StoreCounters:
    """Per-process activity counters shared by both store implementations."""

    binding_hits: int = 0
    accesses_recorded: int = 0
    evictions: int = 0
    result_hits: int = 0
    result_lookups: int = 0
    result_evictions: int = 0
    claim_takeovers: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "binding_hits": self.binding_hits,
            "accesses_recorded": self.accesses_recorded,
            "evictions": self.evictions,
            "result_hits": self.result_hits,
            "result_lookups": self.result_lookups,
            "result_evictions": self.result_evictions,
            "claim_takeovers": self.claim_takeovers,
        }


class _MemoryRecords(RelationRecords):
    """Binding-tier handle of :class:`MemoryCacheStore` for one relation."""

    def __init__(self, store: "MemoryCacheStore", relation_name: str) -> None:
        self._store = store
        self._relation = relation_name

    def get(self, binding: Binding, touch: bool = True) -> Optional[FrozenSet[Row]]:
        return self._store._get(self._relation, tuple(binding), touch)

    def contains(self, binding: Binding) -> bool:
        return self._store._contains(self._relation, tuple(binding))

    def put(self, binding: Binding, rows: FrozenSet[Row]) -> None:
        self._store._put(self._relation, tuple(binding), frozenset(rows))

    def claim(self, binding: Binding) -> Tuple[ClaimStatus, Optional[FrozenSet[Row]]]:
        # Intra-process contention is resolved by the MetaCache's condition
        # variable before the store is consulted, and a memory store is never
        # shared across processes: the caller always owns the access.
        return ClaimStatus.OWNED, None

    def release(self, binding: Binding) -> None:
        pass  # nothing persisted for an unrecorded claim

    def bindings(self) -> FrozenSet[Binding]:
        return self._store._bindings(self._relation)

    def __len__(self) -> int:
        return self._store._count(self._relation)


class MemoryCacheStore(CacheStore):
    """The in-process store: one ordered map per tier, optional TTL/LRU.

    With the default knobs (``ttl=None``, ``max_entries=None``) every
    operation degenerates to a plain dictionary read/write — byte-identical
    to the historical ``MetaCache`` internals.  ``max_entries`` bounds the
    *binding* tier store-wide with LRU eviction (and the result tier
    separately, with the same bound); ``ttl`` expires entries lazily on
    lookup.  ``clock`` is injectable for deterministic TTL tests.
    """

    kind = "memory"
    persistent = False

    def __init__(
        self,
        ttl: Optional[float] = None,
        max_entries: Optional[int] = None,
        result_cache: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.ttl = ttl
        self.max_entries = max_entries
        self.result_cache = result_cache
        self._clock = clock
        self._lock = threading.Lock()
        self._bounded = ttl is not None or max_entries is not None
        self._records: "OrderedDict[Tuple[str, Binding], Tuple[FrozenSet[Row], float]]"
        self._records = OrderedDict()
        self._results: "OrderedDict[str, Tuple[FrozenSet[Row], float]]" = OrderedDict()
        self.counters = StoreCounters()

    @classmethod
    def from_config(cls, config: CacheConfig) -> "MemoryCacheStore":
        return cls(
            ttl=config.ttl,
            max_entries=config.max_entries,
            result_cache=config.result_cache,
        )

    def records(self, relation: RelationSchema) -> RelationRecords:
        return _MemoryRecords(self, relation.name)

    # -- binding tier ------------------------------------------------------
    def _get(
        self, relation: str, binding: Binding, touch: bool
    ) -> Optional[FrozenSet[Row]]:
        key = (relation, binding)
        with self._lock:
            entry = self._records.get(key)
            if entry is None:
                return None
            rows, stamp = entry
            if self._bounded and _expired(stamp, self.ttl, self._clock()):
                del self._records[key]
                self.counters.evictions += 1
                return None
            if touch:
                self.counters.binding_hits += 1
                if self.max_entries is not None:
                    self._records.move_to_end(key)
            return rows

    def _contains(self, relation: str, binding: Binding) -> bool:
        key = (relation, binding)
        with self._lock:
            entry = self._records.get(key)
            if entry is None:
                return False
            if self._bounded and _expired(entry[1], self.ttl, self._clock()):
                del self._records[key]
                self.counters.evictions += 1
                return False
            return True

    def _put(self, relation: str, binding: Binding, rows: FrozenSet[Row]) -> None:
        key = (relation, binding)
        with self._lock:
            self._records[key] = (rows, self._clock() if self._bounded else 0.0)
            self.counters.accesses_recorded += 1
            if self.max_entries is not None:
                self._records.move_to_end(key)
                while len(self._records) > self.max_entries:
                    self._records.popitem(last=False)
                    self.counters.evictions += 1

    def _bindings(self, relation: str) -> FrozenSet[Binding]:
        with self._lock:
            return frozenset(
                binding for (rel, binding) in self._records if rel == relation
            )

    def _count(self, relation: str) -> int:
        with self._lock:
            return sum(1 for (rel, _) in self._records if rel == relation)

    # -- result tier -------------------------------------------------------
    def lookup_result(self, key: str) -> Optional[FrozenSet[Row]]:
        with self._lock:
            self.counters.result_lookups += 1
            entry = self._results.get(key)
            if entry is None:
                return None
            answers, stamp = entry
            if self._bounded and _expired(stamp, self.ttl, self._clock()):
                del self._results[key]
                self.counters.result_evictions += 1
                return None
            self.counters.result_hits += 1
            if self.max_entries is not None:
                self._results.move_to_end(key)
            return answers

    def record_result(self, key: str, answers: FrozenSet[Row]) -> None:
        with self._lock:
            self._results[key] = (
                frozenset(answers),
                self._clock() if self._bounded else 0.0,
            )
            if self.max_entries is not None:
                self._results.move_to_end(key)
                while len(self._results) > self.max_entries:
                    self._results.popitem(last=False)
                    self.counters.result_evictions += 1

    # -- bookkeeping -------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            stats: Dict[str, object] = {
                "kind": self.kind,
                "persistent": self.persistent,
                "binding_entries": len(self._records),
                "result_entries": len(self._results),
            }
            stats.update(self.counters.snapshot())
            return stats

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._results.clear()


def _encode_value_list(values: Tuple[object, ...], what: str) -> str:
    """JSON-encode one binding/row, verifying the round trip is lossless."""
    try:
        encoded = json.dumps(list(values), separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise CacheStoreError(
            f"{what} {values!r} cannot be serialized for the sqlite cache store: {exc}"
        ) from exc
    if tuple(json.loads(encoded)) != values:
        raise CacheStoreError(
            f"{what} {values!r} does not round-trip through JSON "
            "(the sqlite cache store only supports JSON-faithful values)"
        )
    return encoded


def _encode_rows(rows: FrozenSet[Row]) -> str:
    encoded = sorted(_encode_value_list(tuple(row), "row") for row in rows)
    return "[" + ",".join(encoded) + "]"


def _decode_rows(payload: str) -> FrozenSet[Row]:
    return frozenset(tuple(row) for row in json.loads(payload))


class _SQLiteRecords(RelationRecords):
    """Binding-tier handle of :class:`SQLiteCacheStore` for one relation."""

    def __init__(self, store: "SQLiteCacheStore", relation_name: str) -> None:
        self._store = store
        self._relation = relation_name

    def get(self, binding: Binding, touch: bool = True) -> Optional[FrozenSet[Row]]:
        return self._store._get(self._relation, tuple(binding), touch)

    def contains(self, binding: Binding) -> bool:
        return self._store._contains(self._relation, tuple(binding))

    def put(self, binding: Binding, rows: FrozenSet[Row]) -> None:
        self._store._put(self._relation, tuple(binding), frozenset(rows))

    def claim(self, binding: Binding) -> Tuple[ClaimStatus, Optional[FrozenSet[Row]]]:
        return self._store._claim(self._relation, tuple(binding))

    def release(self, binding: Binding) -> None:
        self._store._release(self._relation, tuple(binding))

    def bindings(self) -> FrozenSet[Binding]:
        return self._store._bindings(self._relation)

    def __len__(self) -> int:
        return self._store._count(self._relation)


class SQLiteCacheStore(CacheStore):
    """Persistent cache store over one SQLite database file (WAL mode).

    Layout::

        records(relation, binding, rows, created, last_used)
        claims(relation, binding, claimant, claimed_at)
        results(key, answers, created, last_used)
        counters(relation, hits)          -- survives restarts, feeds stats
        store_meta(key, value)            -- schema fingerprint, format version

    One connection (``check_same_thread=False``) is shared by all threads
    and serialized on an internal lock; cross-*process* atomicity comes from
    SQLite itself (``BEGIN IMMEDIATE`` write transactions, WAL journal, busy
    timeout).  The claim table is the cross-process edition of the
    claim/abandon protocol: a claimant row marks an access as in flight, and
    a claim older than ``stale_claim_after`` is presumed orphaned by a dead
    process and taken over.

    When the store is unbounded, recorded rows are mirrored in an in-process
    dict so repeated reads skip SQL entirely; any TTL/entry bound disables
    the mirror (eviction must be observable on the next lookup).
    """

    kind = "sqlite"
    persistent = True

    _FORMAT_VERSION = "1"

    def __init__(
        self,
        path: str,
        ttl: Optional[float] = None,
        max_entries: Optional[int] = None,
        result_cache: bool = False,
        stale_claim_after: float = 10.0,
        claim_poll_interval: float = 0.01,
        claimant: Optional[str] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = path
        self.ttl = ttl
        self.max_entries = max_entries
        self.result_cache = result_cache
        self.stale_claim_after = stale_claim_after
        self.claim_poll_interval = claim_poll_interval
        # time.time() by default: claim timestamps must be comparable
        # *across processes*, which rules out the monotonic clock.
        self._clock = clock
        self.claimant = claimant or f"{os.getpid()}:{uuid.uuid4().hex[:8]}"
        self._lock = threading.RLock()
        self._bounded = ttl is not None or max_entries is not None
        self._mirror: Dict[Tuple[str, Binding], FrozenSet[Row]] = {}
        self.counters = StoreCounters()
        self._closed = False
        self._conn = sqlite3.connect(
            path, timeout=30.0, check_same_thread=False, isolation_level=None
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._create_tables()

    @classmethod
    def from_config(cls, config: CacheConfig) -> "SQLiteCacheStore":
        if not config.path:
            raise CacheStoreError("sqlite cache store needs a path")
        return cls(
            config.path,
            ttl=config.ttl,
            max_entries=config.max_entries,
            result_cache=config.result_cache,
            stale_claim_after=config.stale_claim_after,
            claim_poll_interval=config.claim_poll_interval,
        )

    def _create_tables(self) -> None:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS records ("
                    " relation TEXT NOT NULL, binding TEXT NOT NULL,"
                    " rows TEXT NOT NULL, created REAL NOT NULL,"
                    " last_used REAL NOT NULL,"
                    " PRIMARY KEY (relation, binding))"
                )
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS claims ("
                    " relation TEXT NOT NULL, binding TEXT NOT NULL,"
                    " claimant TEXT NOT NULL, claimed_at REAL NOT NULL,"
                    " PRIMARY KEY (relation, binding))"
                )
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS results ("
                    " key TEXT PRIMARY KEY, answers TEXT NOT NULL,"
                    " created REAL NOT NULL, last_used REAL NOT NULL)"
                )
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS counters ("
                    " relation TEXT PRIMARY KEY, hits INTEGER NOT NULL)"
                )
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS store_meta ("
                    " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
                )
                self._conn.execute(
                    "INSERT OR IGNORE INTO store_meta (key, value) VALUES (?, ?)",
                    ("format_version", self._FORMAT_VERSION),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            row = self._conn.execute(
                "SELECT value FROM store_meta WHERE key = 'format_version'"
            ).fetchone()
            if row and row[0] != self._FORMAT_VERSION:
                raise CacheStoreError(
                    f"cache store {self.path!r} uses format version {row[0]}, "
                    f"this build expects {self._FORMAT_VERSION}"
                )

    def records(self, relation: RelationSchema) -> RelationRecords:
        return _SQLiteRecords(self, relation.name)

    # -- binding tier ------------------------------------------------------
    def _fetch(
        self, relation: str, binding_key: str, touch: bool
    ) -> Optional[FrozenSet[Row]]:
        """Read one record inside the caller's transaction, expiring on TTL."""
        row = self._conn.execute(
            "SELECT rows, created FROM records WHERE relation = ? AND binding = ?",
            (relation, binding_key),
        ).fetchone()
        if row is None:
            return None
        payload, created = row
        now = self._clock()
        if _expired(created, self.ttl, now):
            self._conn.execute(
                "DELETE FROM records WHERE relation = ? AND binding = ?",
                (relation, binding_key),
            )
            self.counters.evictions += 1
            return None
        if touch and self.max_entries is not None:
            self._conn.execute(
                "UPDATE records SET last_used = ? WHERE relation = ? AND binding = ?",
                (now, relation, binding_key),
            )
        return _decode_rows(payload)

    def _count_hit(self, relation: str) -> None:
        self.counters.binding_hits += 1
        self._conn.execute(
            "INSERT INTO counters (relation, hits) VALUES (?, 1) "
            "ON CONFLICT(relation) DO UPDATE SET hits = hits + 1",
            (relation,),
        )

    def _get(
        self, relation: str, binding: Binding, touch: bool
    ) -> Optional[FrozenSet[Row]]:
        with self._lock:
            mirrored = self._mirror.get((relation, binding))
            if mirrored is not None:
                if touch:
                    self._count_hit(relation)
                return mirrored
            binding_key = _encode_value_list(binding, "binding")
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                rows = self._fetch(relation, binding_key, touch)
                if rows is not None and touch:
                    self._count_hit(relation)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            if rows is not None and not self._bounded:
                self._mirror[(relation, binding)] = rows
            return rows

    def _contains(self, relation: str, binding: Binding) -> bool:
        with self._lock:
            if (relation, binding) in self._mirror:
                return True
            binding_key = _encode_value_list(binding, "binding")
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                rows = self._fetch(relation, binding_key, touch=False)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            return rows is not None

    def _put(self, relation: str, binding: Binding, rows: FrozenSet[Row]) -> None:
        with self._lock:
            binding_key = _encode_value_list(binding, "binding")
            payload = _encode_rows(rows)
            now = self._clock()
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO records "
                    "(relation, binding, rows, created, last_used) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (relation, binding_key, payload, now, now),
                )
                self._conn.execute(
                    "DELETE FROM claims WHERE relation = ? AND binding = ?",
                    (relation, binding_key),
                )
                self.counters.accesses_recorded += 1
                if self.max_entries is not None:
                    self._evict_lru("records", self.max_entries)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            if not self._bounded:
                self._mirror[(relation, binding)] = rows

    def _evict_lru(self, table: str, bound: int) -> None:
        """Drop least-recently-used rows beyond ``bound`` (caller holds a txn)."""
        (count,) = self._conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()
        excess = count - bound
        if excess <= 0:
            return
        self._conn.execute(
            f"DELETE FROM {table} WHERE rowid IN "
            f"(SELECT rowid FROM {table} ORDER BY last_used, rowid LIMIT ?)",
            (excess,),
        )
        if table == "records":
            self.counters.evictions += excess
        else:
            self.counters.result_evictions += excess

    def _claim(
        self, relation: str, binding: Binding
    ) -> Tuple[ClaimStatus, Optional[FrozenSet[Row]]]:
        with self._lock:
            binding_key = _encode_value_list(binding, "binding")
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                rows = self._fetch(relation, binding_key, touch=True)
                if rows is not None:
                    self._count_hit(relation)
                    self._conn.execute("COMMIT")
                    if not self._bounded:
                        self._mirror[(relation, binding)] = rows
                    return ClaimStatus.SERVED, rows
                now = self._clock()
                claim = self._conn.execute(
                    "SELECT claimant, claimed_at FROM claims "
                    "WHERE relation = ? AND binding = ?",
                    (relation, binding_key),
                ).fetchone()
                if claim is None or claim[0] == self.claimant:
                    self._conn.execute(
                        "INSERT OR REPLACE INTO claims "
                        "(relation, binding, claimant, claimed_at) VALUES (?, ?, ?, ?)",
                        (relation, binding_key, self.claimant, now),
                    )
                    self._conn.execute("COMMIT")
                    return ClaimStatus.OWNED, None
                if now - claim[1] > self.stale_claim_after:
                    # The claimant is presumed dead: take the access over so
                    # a crashed process never wedges the shared domain.
                    self._conn.execute(
                        "UPDATE claims SET claimant = ?, claimed_at = ? "
                        "WHERE relation = ? AND binding = ?",
                        (self.claimant, now, relation, binding_key),
                    )
                    self.counters.claim_takeovers += 1
                    self._conn.execute("COMMIT")
                    return ClaimStatus.OWNED, None
                self._conn.execute("COMMIT")
                return ClaimStatus.WAIT, None
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def _release(self, relation: str, binding: Binding) -> None:
        with self._lock:
            binding_key = _encode_value_list(binding, "binding")
            self._conn.execute(
                "DELETE FROM claims WHERE relation = ? AND binding = ? AND claimant = ?",
                (relation, binding_key, self.claimant),
            )

    def _bindings(self, relation: str) -> FrozenSet[Binding]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT binding FROM records WHERE relation = ?", (relation,)
            ).fetchall()
            return frozenset(tuple(json.loads(key)) for (key,) in rows)

    def _count(self, relation: str) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM records WHERE relation = ?", (relation,)
            ).fetchone()
            return count

    # -- result tier -------------------------------------------------------
    def lookup_result(self, key: str) -> Optional[FrozenSet[Row]]:
        with self._lock:
            self.counters.result_lookups += 1
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT answers, created FROM results WHERE key = ?", (key,)
                ).fetchone()
                if row is None:
                    self._conn.execute("COMMIT")
                    return None
                payload, created = row
                now = self._clock()
                if _expired(created, self.ttl, now):
                    self._conn.execute("DELETE FROM results WHERE key = ?", (key,))
                    self.counters.result_evictions += 1
                    self._conn.execute("COMMIT")
                    return None
                self._conn.execute(
                    "UPDATE results SET last_used = ? WHERE key = ?", (now, key)
                )
                self.counters.result_hits += 1
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            return _decode_rows(payload)

    def record_result(self, key: str, answers: FrozenSet[Row]) -> None:
        with self._lock:
            payload = _encode_rows(answers)
            now = self._clock()
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO results (key, answers, created, last_used) "
                    "VALUES (?, ?, ?, ?)",
                    (key, payload, now, now),
                )
                if self.max_entries is not None:
                    self._evict_lru("results", self.max_entries)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    # -- persistence hooks -------------------------------------------------
    def persisted_hit_counters(self) -> Dict[str, int]:
        with self._lock:
            rows = self._conn.execute("SELECT relation, hits FROM counters").fetchall()
            return {relation: hits for relation, hits in rows}

    def check_fingerprint(self, fingerprint: str) -> None:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT value FROM store_meta WHERE key = 'fingerprint'"
                ).fetchone()
                if row is None:
                    self._conn.execute(
                        "INSERT INTO store_meta (key, value) VALUES (?, ?)",
                        ("fingerprint", fingerprint),
                    )
                    self._conn.execute("COMMIT")
                    return
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            if row[0] != fingerprint:
                raise CacheStoreError(
                    f"cache store {self.path!r} was built over a different source "
                    "schema; serving its rows here would be incorrect "
                    f"(stored fingerprint {row[0][:12]}…, engine {fingerprint[:12]}…)"
                )

    # -- bookkeeping -------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            (binding_entries,) = self._conn.execute(
                "SELECT COUNT(*) FROM records"
            ).fetchone()
            (result_entries,) = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
            stats: Dict[str, object] = {
                "kind": self.kind,
                "persistent": self.persistent,
                "binding_entries": binding_entries,
                "result_entries": result_entries,
            }
            stats.update(self.counters.snapshot())
            return stats

    def clear(self) -> None:
        with self._lock:
            self._mirror.clear()
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                for table in ("records", "claims", "results", "counters"):
                    self._conn.execute(f"DELETE FROM {table}")
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            # Release any claims this claimant still holds: a claim that
            # outlives its process would wedge peer workers on the same store
            # until the stale-claim deadline.
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                try:
                    self._conn.execute(
                        "DELETE FROM claims WHERE claimant = ?", (self.claimant,)
                    )
                    self._conn.execute("COMMIT")
                except BaseException:
                    self._conn.execute("ROLLBACK")
                    raise
            except sqlite3.Error:  # pragma: no cover - disk teardown races
                pass
            self._conn.close()


def build_store(config: CacheConfig) -> CacheStore:
    """Instantiate the store selected by a :class:`CacheConfig`."""
    if config.store == "memory":
        return MemoryCacheStore.from_config(config)
    if config.store == "sqlite":
        return SQLiteCacheStore.from_config(config)
    raise CacheStoreError(
        f"unknown cache store kind {config.store!r}; use 'memory' or 'sqlite'"
    )
