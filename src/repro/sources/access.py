"""Accesses and access tuples.

An *access* is the smallest operation that can be performed on a relation
with access limitations: a lookup in which every input argument is bound with
a constant and all output arguments are unconstrained (Section II).  The
binding used by an access is an :class:`AccessTuple`; the pair (relation,
binding) identifies the access, and the set of such pairs performed by a plan
on a database is the quantity the paper's minimality notions compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.model.schema import RelationSchema


@dataclass(frozen=True, order=True, slots=True)
class AccessTuple:
    """The binding of an access: one value per input argument, in order.

    For a free relation the binding is the empty tuple; the access then
    retrieves the whole extension.
    """

    relation: str
    binding: Tuple[object, ...]

    def __str__(self) -> str:
        rendered = ", ".join(repr(value) for value in self.binding)
        return f"{self.relation}[{rendered}]"


@dataclass(frozen=True, slots=True)
class AccessRecord:
    """The outcome of one access: the access tuple plus what it returned.

    Attributes:
        access: the access tuple that was sent to the source.
        rows: the tuples returned by the source (full tuples of the relation).
        sequence_number: position of this access in the global access order.
        simulated_time: simulated clock value (seconds) at which the access
            completed, according to the wrapper's latency model.
    """

    access: AccessTuple
    rows: FrozenSet[Tuple[object, ...]]
    sequence_number: int
    simulated_time: float = 0.0

    @property
    def relation(self) -> str:
        return self.access.relation

    @property
    def row_count(self) -> int:
        return len(self.rows)


def validate_binding(schema: RelationSchema, binding: Tuple[object, ...]) -> None:
    """Check that a binding has exactly one value per input argument.

    Raises:
        repro.exceptions.AccessError: when the binding length is wrong.
    """
    from repro.exceptions import AccessError

    expected = len(schema.input_positions)
    if len(binding) != expected:
        raise AccessError(
            f"access to {schema.name!r} must bind {expected} input argument(s); "
            f"got binding of length {len(binding)}"
        )
