"""Global access log.

The log records every access performed during the evaluation of a query, in
order, and offers the per-relation aggregations used by the experiment
harnesses: number of accesses and number of extracted (distinct) rows per
relation, which are exactly the columns of Figure 6 of the paper.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.sources.access import AccessRecord, AccessTuple


class AccessLog:
    """An ordered record of accesses with per-relation aggregation.

    Mutation is lock-protected: an engine session's cumulative log absorbs
    per-execution logs from concurrently finishing queries, so
    :meth:`record` and :meth:`extend` must be safe to call from several
    threads.  The aggregation views are meant to be read once the writers
    have quiesced (per-execution logs have a single writer by design).
    """

    def __init__(self) -> None:
        self._records: List[AccessRecord] = []
        self._seen: Set[AccessTuple] = set()
        self._rows_by_relation: Dict[str, Set[Tuple[object, ...]]] = {}
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------
    def record(self, record: AccessRecord) -> None:
        with self._lock:
            self._record_locked(record)

    def _record_locked(self, record: AccessRecord) -> None:
        self._records.append(record)
        self._seen.add(record.access)
        self._rows_by_relation.setdefault(record.relation, set()).update(record.rows)

    def extend(self, other: "AccessLog") -> None:
        """Append every record of ``other`` (used to fold per-execution logs
        into an engine session's cumulative log)."""
        with self._lock:
            for record in other:
                self._record_locked(record)

    def was_accessed(self, access: AccessTuple) -> bool:
        """True when the exact (relation, binding) access was already made."""
        return access in self._seen

    # -- aggregation -----------------------------------------------------------
    @property
    def total_accesses(self) -> int:
        return len(self._records)

    def accesses_of(self, relation: str) -> int:
        """Number of accesses made to the given relation."""
        return sum(1 for record in self._records if record.relation == relation)

    def distinct_accesses_of(self, relation: str) -> int:
        return len({record.access for record in self._records if record.relation == relation})

    def rows_of(self, relation: str) -> FrozenSet[Tuple[object, ...]]:
        """Distinct rows extracted from the given relation."""
        return frozenset(self._rows_by_relation.get(relation, frozenset()))

    def row_count_of(self, relation: str) -> int:
        return len(self._rows_by_relation.get(relation, ()))

    def accessed_relations(self) -> List[str]:
        """Relations accessed at least once, in order of first access."""
        seen: List[str] = []
        for record in self._records:
            if record.relation not in seen:
                seen.append(record.relation)
        return seen

    def access_set(self) -> FrozenSet[AccessTuple]:
        """The set ``Acc(D, Π)`` of the paper: all distinct accesses made."""
        return frozenset(self._seen)

    def per_relation_summary(self) -> Dict[str, Tuple[int, int]]:
        """``{relation: (accesses, distinct_rows)}`` for every accessed relation."""
        return {
            relation: (self.accesses_of(relation), self.row_count_of(relation))
            for relation in self.accessed_relations()
        }

    def total_simulated_time(self) -> float:
        """Largest simulated completion time among the recorded accesses."""
        if not self._records:
            return 0.0
        return max(record.simulated_time for record in self._records)

    # -- container protocol -------------------------------------------------------
    def __iter__(self) -> Iterator[AccessRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AccessLog({self.total_accesses} accesses over {len(self._rows_by_relation)} relations)"
