"""Source wrappers.

A wrapper hides a data source behind the access interface of the paper: the
only operation it supports is an *access*, i.e. a lookup with every input
argument bound.  Wrappers count their accesses, charge a configurable
per-access latency to a simulated clock, and can be shared by several
executions through a :class:`SourceRegistry`.

In the paper the wrappers issue SQL selections against remote or local
sources; here they answer from an in-memory :class:`RelationInstance`, which
preserves the only quantity the optimization is about — the number of
accesses — while keeping experiments fast and deterministic.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Tuple

from repro.exceptions import AccessError
from repro.model.instance import DatabaseInstance, RelationInstance
from repro.model.schema import RelationSchema, Schema
from repro.sources.access import AccessRecord, AccessTuple, validate_binding
from repro.sources.log import AccessLog


class SourceWrapper:
    """Wraps one relation instance behind the access interface."""

    def __init__(
        self,
        instance: RelationInstance,
        latency: float = 0.0,
    ) -> None:
        self.instance = instance
        self.latency = latency
        self.access_count = 0
        self.simulated_clock = 0.0

    @property
    def schema(self) -> RelationSchema:
        return self.instance.schema

    @property
    def name(self) -> str:
        return self.schema.name

    def access(
        self,
        binding: Tuple[object, ...],
        log: Optional[AccessLog] = None,
    ) -> FrozenSet[Tuple[object, ...]]:
        """Perform one access with the given binding.

        The binding must contain exactly one value per input argument of the
        relation, in the order of the input positions.  The matching tuples
        are returned; the access is counted and, when a log is supplied,
        recorded there.
        """
        binding = tuple(binding)
        validate_binding(self.schema, binding)
        self.access_count += 1
        self.simulated_clock += self.latency
        rows = self.instance.lookup(binding)
        if log is not None:
            log.record(
                AccessRecord(
                    access=AccessTuple(self.name, binding),
                    rows=rows,
                    sequence_number=log.total_accesses,
                    simulated_time=self.simulated_clock,
                )
            )
        return rows

    def reset_counters(self) -> None:
        self.access_count = 0
        self.simulated_clock = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SourceWrapper({self.name!r}, {len(self.instance)} tuples)"


class SourceRegistry:
    """The set of wrappers over a database instance.

    The registry is the single entry point the executors use to reach the
    sources; it owns the shared :class:`AccessLog` for one execution.
    """

    def __init__(
        self,
        database: DatabaseInstance,
        latency: float = 0.0,
        per_relation_latency: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.database = database
        self.schema: Schema = database.schema
        self.default_latency = latency
        self._wrappers: Dict[str, SourceWrapper] = {}
        for relation in database:
            relation_latency = latency
            if per_relation_latency and relation.schema.name in per_relation_latency:
                relation_latency = per_relation_latency[relation.schema.name]
            self._wrappers[relation.schema.name] = SourceWrapper(relation, relation_latency)

    # -- lookup --------------------------------------------------------------
    def wrapper(self, relation_name: str) -> SourceWrapper:
        try:
            return self._wrappers[relation_name]
        except KeyError:
            raise AccessError(f"no wrapper for relation {relation_name!r}") from None

    def __getitem__(self, relation_name: str) -> SourceWrapper:
        return self.wrapper(relation_name)

    def __contains__(self, relation_name: str) -> bool:
        return relation_name in self._wrappers

    def __iter__(self) -> Iterator[SourceWrapper]:
        return iter(self._wrappers.values())

    def relation_names(self) -> List[str]:
        return list(self._wrappers)

    def latency_of(self, relation_name: str, default: float = 0.0) -> float:
        """Effective simulated latency of one relation's wrapper.

        Wrappers that declare no latency (zero or negative) — and relations
        without a wrapper — are charged ``default``, the same substitution
        the executors apply, so every caller prices an access identically.
        """
        wrapper = self._wrappers.get(relation_name)
        if wrapper is None or wrapper.latency <= 0:
            return default
        return wrapper.latency

    # -- convenience ------------------------------------------------------------
    def access(
        self,
        relation_name: str,
        binding: Tuple[object, ...],
        log: Optional[AccessLog] = None,
    ) -> FrozenSet[Tuple[object, ...]]:
        """Access a relation by name (see :meth:`SourceWrapper.access`)."""
        return self.wrapper(relation_name).access(binding, log)

    def reset_counters(self) -> None:
        for wrapper in self._wrappers.values():
            wrapper.reset_counters()

    def total_access_count(self) -> int:
        return sum(wrapper.access_count for wrapper in self._wrappers.values())

    @classmethod
    def over(
        cls,
        database: DatabaseInstance,
        latency: float = 0.0,
    ) -> "SourceRegistry":
        """Shorthand constructor used throughout the examples."""
        return cls(database, latency=latency)
