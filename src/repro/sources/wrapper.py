"""Source wrappers.

A wrapper hides a data source behind the access interface of the paper: the
only operation it supports is an *access*, i.e. a lookup with every input
argument bound.  Wrappers count their accesses, carry a configurable
per-access simulated latency, and can be shared by several executions
through a :class:`SourceRegistry`.

Where the rows actually come from is the business of the wrapper's
:class:`~repro.sources.backend.SourceBackend`: the in-memory instance of the
seed, a SQLite table answering indexed selections, or an arbitrary callable
(the hook for remote sources).  The wrapper itself only does the
bookkeeping the optimization is about — counting accesses, validating
bindings, and recording :class:`~repro.sources.access.AccessRecord` entries.

Timestamps are the executors' responsibility: records are stamped with the
``simulated_time`` the caller passes, because only the executor knows the
authoritative clock (the heap-based event clock of the distillation
scheduler, or the cumulative sequential clock of the one-at-a-time
strategies).  The wrapper keeps no clock of its own — a per-wrapper
``count × latency`` clock silently diverges from the scheduler's as soon as
wrappers run in parallel.
"""

from __future__ import annotations

import threading
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from typing import TYPE_CHECKING

from repro.exceptions import AccessError
from repro.model.instance import DatabaseInstance, RelationInstance
from repro.model.schema import RelationSchema, Schema
from repro.sources.access import AccessRecord, AccessTuple, validate_binding
from repro.sources.backend import BackendLike, SourceBackend, as_backend, build_backend
from repro.sources.log import AccessLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Executor

    from repro.sources.resilience import FaultSchedule

Row = Tuple[object, ...]
Binding = Tuple[object, ...]


class SourceWrapper:
    """Wraps one source backend behind the access interface."""

    def __init__(
        self,
        source: Union[RelationInstance, SourceBackend],
        latency: float = 0.0,
    ) -> None:
        self.backend = as_backend(source)
        #: The in-memory instance, when the backend has one (back-compat).
        self.instance: Optional[RelationInstance] = getattr(self.backend, "instance", None)
        self.latency = latency
        self.access_count = 0
        # Concurrent engine sessions count accesses through one wrapper.
        self._count_lock = threading.Lock()

    @property
    def schema(self) -> RelationSchema:
        return self.backend.schema

    @property
    def name(self) -> str:
        return self.schema.name

    # -- pure lookups (no counting) -------------------------------------------
    def lookup(self, binding: Binding) -> FrozenSet[Row]:
        """Answer one binding from the backend without counting an access.

        Thread-safe (delegates straight to the backend); the real-concurrency
        dispatcher calls this from worker threads and does the counting in
        the coordinator via :meth:`record_access`.
        """
        binding = tuple(binding)
        validate_binding(self.schema, binding)
        return self.backend.lookup(binding)

    def lookup_many(self, bindings: Sequence[Binding]) -> List[FrozenSet[Row]]:
        """Answer a batch of bindings without counting; one result per binding."""
        validated = [tuple(binding) for binding in bindings]
        for binding in validated:
            validate_binding(self.schema, binding)
        return self.backend.lookup_many(validated)

    async def alookup(
        self, binding: Binding, executor: Optional["Executor"] = None
    ) -> FrozenSet[Row]:
        """:meth:`lookup` as a coroutine, for the event-loop dispatcher.

        A backend with a native async read (``alookup``) is awaited on the
        loop; a sync one is adapted onto ``executor`` (or the loop's
        default pool) so it never blocks the loop.  Same validation, same
        rows, no counting — the async dispatcher's coordinator counts via
        :meth:`record_access`, exactly like the thread-pool dispatcher.
        """
        from repro.sources.async_backend import as_async_backend

        binding = tuple(binding)
        validate_binding(self.schema, binding)
        return await as_async_backend(self.backend, executor).alookup(binding)

    # -- counted accesses -----------------------------------------------------
    def record_access(
        self,
        binding: Binding,
        rows: FrozenSet[Row],
        log: Optional[AccessLog] = None,
        simulated_time: float = 0.0,
    ) -> None:
        """Count one performed access and, when a log is supplied, record it.

        ``simulated_time`` is the executor's authoritative clock at the
        access's completion — the event-heap clock for the distillation
        scheduler, the cumulative latency sum for the sequential strategies.
        """
        with self._count_lock:
            self.access_count += 1
        if log is not None:
            log.record(
                AccessRecord(
                    access=AccessTuple(self.name, tuple(binding)),
                    rows=rows,
                    sequence_number=log.total_accesses,
                    simulated_time=simulated_time,
                )
            )

    def access(
        self,
        binding: Binding,
        log: Optional[AccessLog] = None,
        simulated_time: float = 0.0,
    ) -> FrozenSet[Row]:
        """Perform one access with the given binding.

        The binding must contain exactly one value per input argument of the
        relation, in the order of the input positions.  The matching tuples
        are returned; the access is counted and, when a log is supplied,
        recorded there with the caller's clock.
        """
        rows = self.lookup(binding)
        self.record_access(binding, rows, log, simulated_time)
        return rows

    def access_many(
        self,
        bindings: Sequence[Binding],
        log: Optional[AccessLog] = None,
        simulated_time: float = 0.0,
    ) -> List[FrozenSet[Row]]:
        """Perform a batch of accesses in one backend round.

        Each binding counts as one access (the batch is a transport
        optimization, not a semantic one) and is logged individually, all
        stamped with the same completion clock.
        """
        results = self.lookup_many(bindings)
        for binding, rows in zip(bindings, results):
            self.record_access(binding, rows, log, simulated_time)
        return results

    def reset_counters(self) -> None:
        self.access_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SourceWrapper({self.name!r}, backend={self.backend.kind!r})"


class SourceRegistry:
    """The set of wrappers over a database instance.

    The registry is the single entry point the executors use to reach the
    sources.  ``backend`` selects how every wrapper answers its accesses: a
    kind name from :data:`~repro.sources.backend.BACKEND_KINDS` (``memory``,
    ``sqlite``, ``callable``) or a factory ``RelationInstance ->
    SourceBackend`` for custom sources; ``real_latency`` is the injected
    wall-clock sleep per lookup when the callable kind is chosen.
    """

    def __init__(
        self,
        database: DatabaseInstance,
        latency: float = 0.0,
        per_relation_latency: Optional[Mapping[str, float]] = None,
        backend: BackendLike = "memory",
        real_latency: float = 0.0,
    ) -> None:
        self.database = database
        self.schema: Schema = database.schema
        self.default_latency = latency
        self.backend_kind = backend if isinstance(backend, str) else "custom"
        self._wrappers: Dict[str, SourceWrapper] = {}
        for relation in database:
            relation_latency = latency
            if per_relation_latency and relation.schema.name in per_relation_latency:
                relation_latency = per_relation_latency[relation.schema.name]
            built = build_backend(relation, backend, real_latency=real_latency)
            self._wrappers[relation.schema.name] = SourceWrapper(built, relation_latency)

    # -- lookup --------------------------------------------------------------
    def wrapper(self, relation_name: str) -> SourceWrapper:
        try:
            return self._wrappers[relation_name]
        except KeyError:
            raise AccessError(f"no wrapper for relation {relation_name!r}") from None

    def __getitem__(self, relation_name: str) -> SourceWrapper:
        return self.wrapper(relation_name)

    def __contains__(self, relation_name: str) -> bool:
        return relation_name in self._wrappers

    def __iter__(self) -> Iterator[SourceWrapper]:
        return iter(self._wrappers.values())

    def relation_names(self) -> List[str]:
        return list(self._wrappers)

    def latency_of(self, relation_name: str, default: float = 0.0) -> float:
        """Effective simulated latency of one relation's wrapper.

        Wrappers that declare no latency (zero or negative) — and relations
        without a wrapper — are charged ``default``, the same substitution
        the executors apply, so every caller prices an access identically.
        """
        wrapper = self._wrappers.get(relation_name)
        if wrapper is None or wrapper.latency <= 0:
            return default
        return wrapper.latency

    # -- convenience ------------------------------------------------------------
    def access(
        self,
        relation_name: str,
        binding: Binding,
        log: Optional[AccessLog] = None,
        simulated_time: float = 0.0,
    ) -> FrozenSet[Row]:
        """Access a relation by name (see :meth:`SourceWrapper.access`)."""
        return self.wrapper(relation_name).access(binding, log, simulated_time)

    def access_many(
        self,
        relation_name: str,
        bindings: Sequence[Binding],
        log: Optional[AccessLog] = None,
        simulated_time: float = 0.0,
    ) -> List[FrozenSet[Row]]:
        """Batched access by relation name (see :meth:`SourceWrapper.access_many`)."""
        return self.wrapper(relation_name).access_many(bindings, log, simulated_time)

    def fingerprint(self) -> str:
        """Stable digest of the registry's source schemata.

        Persistent cache stores are bound to this digest: a store records
        rows *of these relations under these access patterns*, so attaching
        it to a registry with a different shape must be rejected (see
        :meth:`repro.sources.store.CacheStore.check_fingerprint`).  The
        digest covers relation names, access patterns and abstract domains
        — not the data, which sources may legitimately re-serve.
        """
        import hashlib

        parts = []
        for name in sorted(self._wrappers):
            schema = self._wrappers[name].schema
            domains = ",".join(
                getattr(domain, "name", str(domain)) for domain in schema.domains
            )
            parts.append(f"{name}/{schema.pattern}/{domains}")
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()

    def reset_counters(self) -> None:
        for wrapper in self._wrappers.values():
            wrapper.reset_counters()

    def total_access_count(self) -> int:
        return sum(wrapper.access_count for wrapper in self._wrappers.values())

    def close(self) -> None:
        """Close every wrapper's backend (e.g. SQLite connections).

        Idempotent, and robust to backends that error while closing: one
        broken backend must not keep the others' resources alive.
        """
        for wrapper in self._wrappers.values():
            try:
                wrapper.backend.close()
            except Exception:
                continue

    def inject_faults(self, schedule: "FaultSchedule") -> None:
        """Wrap every wrapper's backend in a
        :class:`~repro.sources.resilience.FlakyBackend` with the given
        deterministic fault schedule (chaos testing / the CLI ``--fail``
        flag).  Layers compose: injecting twice stacks two schedules.
        """
        from repro.sources.resilience import FlakyBackend

        for wrapper in self._wrappers.values():
            wrapper.backend = FlakyBackend(wrapper.backend, schedule)

    @classmethod
    def over(
        cls,
        database: DatabaseInstance,
        latency: float = 0.0,
        backend: BackendLike = "memory",
    ) -> "SourceRegistry":
        """Shorthand constructor used throughout the examples."""
        return cls(database, latency=latency, backend=backend)
