"""Pluggable source backends: where an access is actually answered from.

The paper models every source as a black box reached only through *accesses*
(lookups binding all input arguments); the wrapper layer counts and prices
those accesses but should not care how the rows are produced.  A
:class:`SourceBackend` is exactly that how: the physical store behind one
relation's wrapper.  Three backends ship with the library:

* :class:`InMemoryBackend` — the original behaviour: answers from a
  :class:`~repro.model.instance.RelationInstance` via its input-position
  hash index.  Zero real latency; the default everywhere.
* :class:`SQLiteBackend` — the relation lives in a SQLite table with a
  composite index on the input positions, so an access becomes an indexed
  ``SELECT``.  This is the in-process stand-in for the SQL selections the
  paper's prototype issues against remote sources.
* :class:`CallableBackend` — delegates to an arbitrary function
  ``binding -> rows`` and can inject real (wall-clock) latency per lookup.
  This is the hook for future HTTP/RPC sources and the workload used to
  exercise the real-concurrency dispatcher.

Backends are *pure readers*: they do no counting, no logging and no latency
simulation — that bookkeeping stays in :class:`~repro.sources.wrapper.
SourceWrapper`.  They must be safe to call from multiple threads, because
the real-concurrency dispatcher
(:class:`~repro.runtime.dispatch.ThreadPoolDispatcher`) issues lookups
from a thread pool and :meth:`~repro.engine.engine.Engine.execute_many`
runs whole queries concurrently; :class:`SQLiteBackend` serializes on an
internal lock, the other two are read-only over immutable state.
"""

from __future__ import annotations

import abc
import sqlite3
import threading
import time
from typing import Callable, ClassVar, FrozenSet, Iterable, List, Sequence, Tuple, Union

from repro.exceptions import AccessError
from repro.model.instance import RelationInstance
from repro.model.schema import RelationSchema

Row = Tuple[object, ...]
Binding = Tuple[object, ...]

#: The backend kinds constructible by name through :func:`build_backend`.
BACKEND_KINDS: Tuple[str, ...] = ("memory", "sqlite", "callable")

#: How a registry names or builds backends: a kind name or a factory over
#: the relation instance the registry would otherwise wrap directly.
BackendFactory = Callable[[RelationInstance], "SourceBackend"]
BackendLike = Union[str, BackendFactory]


class SourceBackend(abc.ABC):
    """The physical store answering one relation's accesses.

    Subclasses set ``kind`` (a short name used in reprs and CLIs), expose the
    relation's schema as ``schema``, and implement :meth:`lookup`.  The
    default :meth:`lookup_many` maps :meth:`lookup` over a batch; backends
    with a cheaper bulk path (one connection round-trip, one lock
    acquisition) override it.
    """

    kind: ClassVar[str] = ""
    schema: RelationSchema

    @abc.abstractmethod
    def lookup(self, binding: Binding) -> FrozenSet[Row]:
        """Rows whose input arguments equal ``binding`` (may block for I/O)."""

    def lookup_many(self, bindings: Sequence[Binding]) -> List[FrozenSet[Row]]:
        """Answer a batch of bindings; one result per binding, in order."""
        return [self.lookup(binding) for binding in bindings]

    def close(self) -> None:
        """Release any resources held by the backend (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.schema.name!r})"


class InMemoryBackend(SourceBackend):
    """Answers from a :class:`RelationInstance`'s input-position hash index."""

    kind = "memory"

    def __init__(self, instance: RelationInstance) -> None:
        self.instance = instance
        self.schema = instance.schema

    def lookup(self, binding: Binding) -> FrozenSet[Row]:
        return self.instance.lookup(binding)


class SQLiteBackend(SourceBackend):
    """The relation as a SQLite table; an access is an indexed selection.

    The table has one column per argument position and a composite index on
    the input positions, so a lookup is an index probe rather than a scan.
    Values are stored natively and must round-trip through SQLite unchanged:
    ``str``, ``int``, ``float`` and ``bytes`` are accepted; anything else
    (including ``bool``, which SQLite would flatten to an integer) is
    rejected at load time so cross-backend equivalence can never silently
    break.

    One connection is shared across threads (``check_same_thread=False``)
    and every statement runs under a lock, which is all the real-concurrency
    dispatcher needs: the point of that workload is parallelism *across*
    sources, not within one.
    """

    kind = "sqlite"

    _ALLOWED_TYPES = (str, int, float, bytes)

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Row] = (),
        path: str = ":memory:",
    ) -> None:
        self.schema = schema
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._closed = False
        self._nullary_present = False
        self._table = f'"rel_{schema.name}"'
        arity = schema.arity
        if arity:
            columns = ", ".join(f"c{i}" for i in range(arity))
            self._connection.execute(
                f"CREATE TABLE IF NOT EXISTS {self._table} ({columns})"
            )
            if schema.input_positions:
                indexed = ", ".join(f"c{i}" for i in schema.input_positions)
                self._connection.execute(
                    f'CREATE INDEX IF NOT EXISTS "idx_{schema.name}_input" '
                    f"ON {self._table} ({indexed})"
                )
            self._select_all = f"SELECT * FROM {self._table}"
            predicate = " AND ".join(f"c{i} = ?" for i in schema.input_positions)
            self._select_bound = (
                f"{self._select_all} WHERE {predicate}" if predicate else self._select_all
            )
        self.add_rows(rows)

    @classmethod
    def from_instance(cls, instance: RelationInstance, path: str = ":memory:") -> "SQLiteBackend":
        """Load a relation instance's extension into a fresh SQLite table."""
        return cls(instance.schema, instance, path=path)

    # -- loading --------------------------------------------------------------
    def add_rows(self, rows: Iterable[Row]) -> None:
        rows = [tuple(row) for row in rows]
        for row in rows:
            if len(row) != self.schema.arity:
                raise AccessError(
                    f"row {row!r} has arity {len(row)} but relation "
                    f"{self.schema.name!r} has arity {self.schema.arity}"
                )
            for value in row:
                if isinstance(value, bool) or not isinstance(value, self._ALLOWED_TYPES):
                    raise AccessError(
                        f"SQLite backend for {self.schema.name!r} cannot store "
                        f"{value!r} ({type(value).__name__}); use str/int/float/bytes"
                    )
        if not rows:
            return
        with self._lock:
            if self.schema.arity == 0:
                self._nullary_present = True
                return
            placeholders = ", ".join("?" for _ in range(self.schema.arity))
            self._connection.executemany(
                f"INSERT INTO {self._table} VALUES ({placeholders})", rows
            )
            self._connection.commit()

    # -- lookup ---------------------------------------------------------------
    def lookup(self, binding: Binding) -> FrozenSet[Row]:
        with self._lock:
            return self._lookup_locked(tuple(binding))

    def lookup_many(self, bindings: Sequence[Binding]) -> List[FrozenSet[Row]]:
        # One lock acquisition (and one connection round, for remote-style
        # deployments) for the whole batch.
        with self._lock:
            return [self._lookup_locked(tuple(binding)) for binding in bindings]

    def _lookup_locked(self, binding: Binding) -> FrozenSet[Row]:
        if self._closed:
            raise AccessError(
                f"SQLite backend for {self.schema.name!r} is closed; "
                "no further accesses are possible"
            )
        if self.schema.arity == 0:
            return frozenset({()}) if self._nullary_present else frozenset()
        if binding:
            cursor = self._connection.execute(self._select_bound, binding)
        else:
            cursor = self._connection.execute(self._select_all)
        return frozenset(tuple(row) for row in cursor.fetchall())

    def close(self) -> None:
        """Release the connection; safe to call repeatedly, and after a
        backend error mid-query (double close and close-after-error are
        no-ops — the failure paths of the resilience layer may tear an
        engine down while accesses are still erroring out)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._connection.close()
            except sqlite3.Error:  # pragma: no cover - defensive
                pass


class CallableBackend(SourceBackend):
    """Delegates lookups to an arbitrary ``binding -> rows`` function.

    The function may do anything — consult a dict, call an HTTP endpoint,
    compute rows on the fly — as long as it is thread-safe and returns the
    same rows for the same binding within a run.  ``latency`` injects a real
    ``time.sleep`` per lookup, which is how the tests and benchmarks make a
    "slow remote source" for the real-concurrency dispatcher to parallelize
    over.
    """

    kind = "callable"

    def __init__(
        self,
        schema: RelationSchema,
        fn: Callable[[Binding], Iterable[Row]],
        latency: float = 0.0,
    ) -> None:
        self.schema = schema
        self._fn = fn
        self.latency = latency

    @classmethod
    def from_instance(
        cls, instance: RelationInstance, latency: float = 0.0
    ) -> "CallableBackend":
        """A callable backend answering from an in-memory instance (optionally slowly)."""
        return cls(instance.schema, instance.lookup, latency=latency)

    def lookup(self, binding: Binding) -> FrozenSet[Row]:
        if self.latency > 0:
            time.sleep(self.latency)
        return frozenset(tuple(row) for row in self._fn(tuple(binding)))


def as_backend(source: Union[SourceBackend, RelationInstance]) -> SourceBackend:
    """Coerce a wrapper's source into a backend (instances get wrapped)."""
    if isinstance(source, SourceBackend):
        return source
    if isinstance(source, RelationInstance):
        return InMemoryBackend(source)
    raise AccessError(
        f"cannot build a source backend from {type(source).__name__}; "
        "pass a SourceBackend or a RelationInstance"
    )


def build_backend(
    instance: RelationInstance,
    kind: BackendLike = "memory",
    *,
    real_latency: float = 0.0,
) -> SourceBackend:
    """Build a backend of the given kind over one relation instance.

    ``kind`` is one of :data:`BACKEND_KINDS`, an ``http://HOST:PORT`` /
    ``https://HOST:PORT`` URL (accesses go to a remote JSON lookup service
    speaking the :mod:`repro.sources.http` protocol; the local instance
    only contributes the schema), or a factory ``RelationInstance ->
    SourceBackend`` for fully custom backends.  ``real_latency`` only
    applies to the callable kind (injected sleep per lookup); the memory
    and sqlite kinds are as fast as they are.
    """
    if callable(kind) and not isinstance(kind, str):
        backend = kind(instance)
        if not isinstance(backend, SourceBackend):
            raise AccessError(
                f"backend factory returned {type(backend).__name__}, not a SourceBackend"
            )
        return backend
    if kind == "memory":
        return InMemoryBackend(instance)
    if kind == "sqlite":
        return SQLiteBackend.from_instance(instance)
    if kind == "callable":
        return CallableBackend.from_instance(instance, latency=real_latency)
    if isinstance(kind, str) and kind.startswith(("http://", "https://")):
        from repro.sources.http import HTTPBackend

        return HTTPBackend(instance.schema, kind)
    raise AccessError(
        f"unknown source backend kind {kind!r}; available: "
        f"{', '.join(BACKEND_KINDS)}, or an http(s)://HOST:PORT URL"
    )
