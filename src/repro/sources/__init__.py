"""Source wrappers, access bookkeeping and the cache database.

This package models the data-extraction half of Figure 5 of the paper:

* :class:`~repro.sources.access.AccessTuple` — the binding with which a
  source is accessed (one value per input argument);
* :class:`~repro.sources.backend.SourceBackend` — the physical store behind
  one wrapper (in-memory instance, SQLite table, arbitrary callable);
* :class:`~repro.sources.wrapper.SourceWrapper` — wraps a source backend
  and serves accesses while counting them and charging a configurable
  latency;
* :class:`~repro.sources.wrapper.SourceRegistry` — the set of wrappers for a
  database instance;
* :class:`~repro.sources.log.AccessLog` — global record of the accesses
  performed during an execution;
* :class:`~repro.sources.cache.CacheDatabase` — the cache tables (one per
  plan cache predicate), the per-relation meta-caches and the access tables.
"""

from repro.sources.access import AccessRecord, AccessTuple
from repro.sources.backend import (
    BACKEND_KINDS,
    CallableBackend,
    InMemoryBackend,
    SourceBackend,
    SQLiteBackend,
    build_backend,
)
from repro.sources.cache import AccessTable, CacheDatabase, CacheTable, MetaCache
from repro.sources.log import AccessLog
from repro.sources.resilience import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    FaultSchedule,
    FlakyBackend,
    ResilienceConfig,
    ResilienceContext,
    RetryPolicy,
    RetryStats,
    SourceFault,
    SourceTimeoutError,
    SourceUnavailableError,
    TransientSourceError,
    make_flaky,
)
from repro.sources.wrapper import SourceRegistry, SourceWrapper

__all__ = [
    "AccessLog",
    "AccessRecord",
    "AccessTable",
    "AccessTuple",
    "BACKEND_KINDS",
    "BreakerConfig",
    "BreakerState",
    "CacheDatabase",
    "CacheTable",
    "CallableBackend",
    "CircuitBreaker",
    "CircuitOpenError",
    "FaultSchedule",
    "FlakyBackend",
    "InMemoryBackend",
    "MetaCache",
    "ResilienceConfig",
    "ResilienceContext",
    "RetryPolicy",
    "RetryStats",
    "SQLiteBackend",
    "SourceBackend",
    "SourceFault",
    "SourceRegistry",
    "SourceTimeoutError",
    "SourceUnavailableError",
    "SourceWrapper",
    "TransientSourceError",
    "build_backend",
    "make_flaky",
]
