"""The cache database: cache tables, meta-caches and access tables.

Toorjah's data-extraction layer (Figure 5 of the paper) keeps three kinds of
auxiliary structures:

* **cache tables** — one physical table per cache predicate of the plan (one
  cache per occurrence of a relation in the query, plus one per relevant
  relation not occurring in the query), holding the tuples extracted so far;
* **meta-caches** — one per relation, defined as the union of all the caches
  over that relation; before accessing a relation, the executor consults the
  meta-cache to check whether the access tuple was already used (possibly by
  another occurrence), in which case the extraction is read from the cache
  instead of hitting the source again;
* **access tables** — one per relation with limitations, storing the access
  tuples that are ready to be shipped to the corresponding wrapper (used by
  the distillation scheduler).

Every structure here is *append-only* and indexed for the executors' hot
paths: cache tables maintain per-position value indexes (set + insertion
log), so reading the distinct values at an argument position — the operation
behind every domain-provider evaluation — is O(1) instead of a scan over all
rows, and the logs let the executors consume only the values that appeared
since their last visit (delta-driven binding generation, see
:mod:`repro.plan.bindings`).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import (
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.model.schema import RelationSchema
from repro.sources.access import AccessTuple
from repro.sources.store import (
    CacheStore,
    ClaimStatus,
    MemoryCacheStore,
    RelationRecords,
)

Row = Tuple[object, ...]


class CacheTable:
    """The extension of one cache predicate.

    A cache table remembers, besides its tuples, which relation and which
    occurrence of the query it caches, and at which ordering position it must
    be populated.  It maintains one value index per argument position,
    updated on insertion: a set of the distinct values seen at that position
    (for O(1) reads and membership tests) and an append-only log of the same
    values in arrival order (so executors can read just the values added
    since a watermark).
    """

    def __init__(
        self,
        name: str,
        relation: RelationSchema,
        position: int = 0,
    ) -> None:
        self.name = name
        self.relation = relation
        self.position = position
        self._rows: Set[Row] = set()
        arity = relation.arity
        self._value_sets: List[Set[object]] = [set() for _ in range(arity)]
        self._value_logs: List[List[object]] = [[] for _ in range(arity)]
        self._row_log: List[Row] = []
        # position-group hash indexes, maintained lazily from the row log:
        # {positions: [{key: [rows]}, watermark-into-row-log]}
        self._indexes: Dict[Tuple[int, ...], List[object]] = {}

    # -- mutation -----------------------------------------------------------
    def add(self, row: Row) -> bool:
        row = tuple(row)
        if row in self._rows:
            return False
        self._rows.add(row)
        self._row_log.append(row)
        while len(self._value_sets) < len(row):  # tolerate over-arity rows
            self._value_sets.append(set())
            self._value_logs.append([])
        for position, value in enumerate(row):
            values = self._value_sets[position]
            if value not in values:
                values.add(value)
                self._value_logs[position].append(value)
        return True

    def add_all(self, rows: Iterable[Row]) -> int:
        return sum(1 for row in rows if self.add(row))

    # -- inspection ----------------------------------------------------------
    def rows(self) -> FrozenSet[Row]:
        return frozenset(self._rows)

    def values_at(self, position: int) -> Set[object]:
        """Distinct values at one argument position.

        Returns the live index set in O(1); callers must treat it as
        read-only (it keeps growing as rows are added).
        """
        return self._value_sets[position]

    def value_log(self, position: int) -> List[object]:
        """Append-only log of the distinct values at one position, in arrival order.

        The returned list is live: new values are appended as rows arrive,
        and existing entries never move, so ``value_log(p)[mark:]`` is
        exactly the values that appeared since a caller's watermark ``mark``.
        """
        return self._value_logs[position]

    def value_count(self, position: int) -> int:
        return len(self._value_logs[position])

    def row_log(self) -> List[Row]:
        """Append-only log of the distinct rows, in arrival order.

        The returned list is live (rows are appended as they arrive, and
        existing entries never move), so ``row_log()[mark:]`` is exactly the
        rows added since a caller's watermark ``mark`` — the hook behind the
        incremental (semi-naive) answer checks of the runtime kernel.
        """
        return self._row_log

    def index_for(self, positions: Tuple[int, ...]) -> Dict[Tuple[object, ...], List[Row]]:
        """Hash index ``{key: rows}`` grouping rows by the given positions.

        Indexes persist across calls and are brought up to date
        incrementally from the row log, so repeated probes cost O(new rows)
        instead of a rebuild per evaluation.  Rows too short for the
        requested positions are skipped (over-arity tolerance cuts both
        ways).  Callers must treat the returned buckets as read-only.
        """
        entry = self._indexes.get(positions)
        if entry is None:
            entry = [{}, 0]
            self._indexes[positions] = entry
        index: Dict[Tuple[object, ...], List[Row]] = entry[0]
        mark: int = entry[1]
        log = self._row_log
        if mark < len(log):
            width = max(positions) + 1 if positions else 0
            for i in range(mark, len(log)):
                row = log[i]
                if len(row) < width:
                    continue
                key = tuple(row[p] for p in positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [row]
                else:
                    bucket.append(row)
            entry[1] = len(log)
        return index

    def probe(self, positions: Tuple[int, ...], key: Tuple[object, ...]) -> Sequence[Row]:
        """Rows whose values at ``positions`` equal ``key`` (O(1) + new-row upkeep)."""
        return self.index_for(positions).get(key, ())

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheTable({self.name!r}, {len(self)} rows)"


class MetaCache:
    """Per-relation record of the accesses already made and their results.

    The meta-cache is "a sort of cache defined as the union of all the caches
    on that relation" (Section IV): it maps every access tuple already used
    against the relation to the rows that the source returned, so that a
    repeated access (possibly issued on behalf of a different occurrence of
    the relation) can be answered locally at no cost.

    The union of all extracted rows is maintained incrementally on
    :meth:`record`, so :meth:`all_rows` is O(1) amortized instead of a union
    over every recorded access.  The union is append-only: re-recording a
    binding never removes rows from it (sources are assumed immutable within
    a session, so a repeated access returns the same rows anyway).

    Meta-caches are shared between the concurrent executions of an engine
    session, so every method is thread-safe, and the *claim* protocol
    extends the "never repeat an access" invariant across threads: a
    dispatcher :meth:`claim`\\ s a binding before touching the source.  The
    first claimant owns the access (and must :meth:`record` or
    :meth:`abandon` it); later claimants block until it is fulfilled and
    read the rows for free.  An owner never holds a claim while waiting on
    another, so claim chains always resolve.

    The binding→rows records themselves live in a pluggable
    :class:`~repro.sources.store.RelationRecords` handle (see
    :mod:`repro.sources.store`): the default in-memory handle reproduces the
    historical dictionary exactly, while a persistent handle makes the
    "never repeat an access" domain survive restarts and extends the claim
    protocol across processes.  Because a bounded store may *evict* records,
    a lookup miss no longer implies the access was never performed — it only
    means it must be (re-)performed, which the claim gate then arbitrates.
    The row union stays in-process and append-only regardless of the store.
    """

    def __init__(
        self,
        relation: RelationSchema,
        records: Optional[RelationRecords] = None,
        claim_poll_interval: float = 0.01,
    ) -> None:
        self.relation = relation
        if records is None:
            records = MemoryCacheStore().records(relation)
        self._records = records
        self._claim_poll_interval = claim_poll_interval
        self._union: Set[Row] = set()
        self._union_view: Optional[FrozenSet[Row]] = None
        self._inflight: Set[Tuple[object, ...]] = set()
        self._cond = threading.Condition()
        #: Accesses answered locally instead of hitting the source (offer
        #: passes and claim hits alike); feeds the session hit-rate stats.
        self.hits = 0

    def _absorb_union(self, rows: FrozenSet[Row]) -> None:
        """Fold served rows into the union (no-op when already absorbed).

        Must be called with the condition held.  Needed because a persistent
        store can serve rows recorded by an earlier process, which never
        passed through this instance's :meth:`record`.
        """
        if not rows <= self._union:
            self._union.update(rows)
            self._union_view = None

    def has_access(self, binding: Tuple[object, ...]) -> bool:
        with self._cond:
            return self._records.contains(tuple(binding))

    def record(self, binding: Tuple[object, ...], rows: FrozenSet[Row]) -> None:
        """Record one performed access, fulfilling any claim on its binding."""
        rows = frozenset(rows)
        binding = tuple(binding)
        # The store write also releases any cross-process claim, so remote
        # waiters see the rows no later than local ones.
        self._records.put(binding, rows)
        with self._cond:
            self._absorb_union(rows)
            if binding in self._inflight:
                self._inflight.discard(binding)
                self._cond.notify_all()

    def rows_for(self, binding: Tuple[object, ...]) -> FrozenSet[Row]:
        with self._cond:
            rows = self._records.get(tuple(binding), touch=False)
            return rows if rows is not None else frozenset()

    def lookup(self, binding: Tuple[object, ...]) -> Optional[FrozenSet[Row]]:
        """The recorded rows for a binding, or None — counting a hit."""
        with self._cond:
            rows = self._records.get(tuple(binding))
            if rows is not None:
                self.hits += 1
                self._absorb_union(rows)
            return rows

    def claim(self, binding: Tuple[object, ...]) -> Optional[FrozenSet[Row]]:
        """Atomically take ownership of one access, or be served its rows.

        Returns None when the caller now owns the access (it must call
        :meth:`record` with the retrieved rows, or :meth:`abandon` on
        failure); returns the rows when the binding is already recorded —
        possibly after waiting out another execution's in-flight access.
        In-process contention is settled on the condition variable first;
        the surviving owner then contends with other *processes* through
        the store's claim table (trivially won for the in-memory store).
        """
        binding = tuple(binding)
        with self._cond:
            while True:
                rows = self._records.get(binding)
                if rows is not None:
                    self.hits += 1
                    self._absorb_union(rows)
                    return rows
                if binding not in self._inflight:
                    self._inflight.add(binding)
                    break
                self._cond.wait()
        # This thread owns the access in-process; win it across processes
        # too.  Polling happens outside the condition so local record() and
        # abandon() calls for other bindings are never blocked.
        while True:
            status, rows = self._records.claim(binding)
            if status is ClaimStatus.OWNED:
                return None
            if status is ClaimStatus.SERVED:
                served = rows if rows is not None else frozenset()
                with self._cond:
                    self.hits += 1
                    self._absorb_union(served)
                    self._inflight.discard(binding)
                    self._cond.notify_all()
                return served
            time.sleep(self._claim_poll_interval)

    def try_claim(
        self, binding: Tuple[object, ...]
    ) -> Tuple[ClaimStatus, Optional[FrozenSet[Row]]]:
        """One non-blocking round of the claim protocol.

        The async dispatcher cannot block on the condition variable (that
        would stall the event loop the fulfilling coroutine runs on), so it
        polls this method with ``await asyncio.sleep(...)`` between rounds.
        Returns ``(OWNED, None)`` when the caller now owns the access,
        ``(SERVED, rows)`` when the binding is recorded (a hit), or
        ``(WAIT, None)`` when another coroutine/thread/process holds the
        claim and the caller should retry after a pause.
        """
        binding = tuple(binding)
        with self._cond:
            rows = self._records.get(binding)
            if rows is not None:
                self.hits += 1
                self._absorb_union(rows)
                return ClaimStatus.SERVED, rows
            if binding in self._inflight:
                return ClaimStatus.WAIT, None
            self._inflight.add(binding)
        status, rows = self._records.claim(binding)
        if status is ClaimStatus.OWNED:
            return ClaimStatus.OWNED, None
        if status is ClaimStatus.SERVED:
            served = rows if rows is not None else frozenset()
            with self._cond:
                self.hits += 1
                self._absorb_union(served)
                self._inflight.discard(binding)
                self._cond.notify_all()
            return ClaimStatus.SERVED, served
        # Another *process* owns the claim: release the in-process marker so
        # local contenders (including this caller's retry) can re-contend.
        with self._cond:
            self._inflight.discard(binding)
            self._cond.notify_all()
        return ClaimStatus.WAIT, None

    def abandon(self, binding: Tuple[object, ...]) -> None:
        """Give up an owned claim (the access failed); waiters re-contend."""
        binding = tuple(binding)
        self._records.release(binding)
        with self._cond:
            self._inflight.discard(binding)
            self._cond.notify_all()

    def bindings(self) -> FrozenSet[Tuple[object, ...]]:
        with self._cond:
            return self._records.bindings()

    def all_rows(self) -> FrozenSet[Row]:
        """Union of all rows extracted from the relation so far."""
        with self._cond:
            if self._union_view is None:
                self._union_view = frozenset(self._union)
            return self._union_view

    def __len__(self) -> int:
        with self._cond:
            return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetaCache({self.relation.name!r}, {len(self)} accesses)"


class AccessTable:
    """Pending access tuples for one relation with limitations.

    The paper's Figure 5 structure: access tuples generated from the cache
    database wait here before being shipped to the relation's wrapper.  The
    built-in :class:`~repro.plan.parallel.DistillationExecutor` keeps its
    backlogs per *cache occurrence* rather than per relation (two caches
    over one relation may legitimately dispatch the same binding), so this
    per-relation table is the dedup-by-relation variant offered to external
    schedulers via :meth:`CacheDatabase.access_table`.  Offers are O(1): a
    seen-set rejects duplicates (whether still pending or already
    delivered) and the pending backlog is a deque, so :meth:`take` pops
    from the front without shifting the rest.
    """

    def __init__(self, relation: RelationSchema) -> None:
        self.relation = relation
        self.pending: Deque[AccessTuple] = deque()
        self.delivered: Set[AccessTuple] = set()
        self._seen: Set[AccessTuple] = set()

    def offer(self, access: AccessTuple) -> bool:
        """Add an access tuple unless it was already offered or delivered."""
        if access in self._seen:
            return False
        self._seen.add(access)
        self.pending.append(access)
        return True

    def take(self) -> Optional[AccessTuple]:
        """Remove and return the next pending access tuple, if any."""
        if not self.pending:
            return None
        access = self.pending.popleft()
        self.delivered.add(access)
        return access

    def __len__(self) -> int:
        return len(self.pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AccessTable({self.relation.name!r}, {len(self)} pending)"


class CacheDatabase:
    """All cache tables of one execution, plus the per-relation meta-caches.

    The meta-caches may be shared between several cache databases: an engine
    session passes the same ``shared_meta`` mapping to every execution it
    creates, so that the "never repeat an access" invariant holds *across*
    the queries of the session, not just within one plan.  Cache tables are
    always private to one execution (they are plan-specific, and mutated
    only by that execution's coordinating thread); the shared meta mapping
    is guarded by ``meta_lock`` (the session's lock), so concurrent
    executions agree on one :class:`MetaCache` object per relation.

    ``store`` selects where the meta-caches' records live (see
    :mod:`repro.sources.store`); when omitted, each meta-cache gets a
    private unbounded in-memory handle — the historical behaviour.
    """

    def __init__(
        self,
        shared_meta: Optional[Dict[str, MetaCache]] = None,
        meta_lock: Optional[threading.Lock] = None,
        store: Optional[CacheStore] = None,
    ) -> None:
        self._caches: Dict[str, CacheTable] = {}
        self._meta: Dict[str, MetaCache] = shared_meta if shared_meta is not None else {}
        self._meta_lock = meta_lock if meta_lock is not None else threading.Lock()
        self._store = store
        self._access_tables: Dict[str, AccessTable] = {}

    # -- cache tables ------------------------------------------------------------
    def create_cache(self, name: str, relation: RelationSchema, position: int = 0) -> CacheTable:
        if name not in self._caches:
            self._caches[name] = CacheTable(name, relation, position)
        return self._caches[name]

    def cache(self, name: str) -> CacheTable:
        return self._caches[name]

    def has_cache(self, name: str) -> bool:
        return name in self._caches

    def caches(self) -> List[CacheTable]:
        return list(self._caches.values())

    def caches_at_position(self, position: int) -> List[CacheTable]:
        return [cache for cache in self._caches.values() if cache.position == position]

    def caches_of_relation(self, relation_name: str) -> List[CacheTable]:
        return [
            cache for cache in self._caches.values() if cache.relation.name == relation_name
        ]

    # -- meta-caches ----------------------------------------------------------------
    def meta_cache(self, relation: RelationSchema) -> MetaCache:
        meta = self._meta.get(relation.name)
        if meta is None:
            with self._meta_lock:
                meta = self._meta.get(relation.name)
                if meta is None:
                    if self._store is not None:
                        meta = MetaCache(
                            relation,
                            records=self._store.records(relation),
                            claim_poll_interval=getattr(
                                self._store, "claim_poll_interval", 0.01
                            ),
                        )
                    else:
                        meta = MetaCache(relation)
                    self._meta[relation.name] = meta
        return meta

    def meta_caches(self) -> Dict[str, MetaCache]:
        return dict(self._meta)

    # -- access tables ----------------------------------------------------------------
    def access_table(self, relation: RelationSchema) -> AccessTable:
        if relation.name not in self._access_tables:
            self._access_tables[relation.name] = AccessTable(relation)
        return self._access_tables[relation.name]

    # -- views ---------------------------------------------------------------------------
    def contents(self) -> Dict[str, FrozenSet[Row]]:
        """Snapshot ``{cache_name: rows}`` used to evaluate queries over the caches."""
        return {name: cache.rows() for name, cache in self._caches.items()}

    def extracted_rows_by_relation(self) -> Dict[str, FrozenSet[Row]]:
        """Distinct rows extracted per source relation (via the meta-caches)."""
        return {name: meta.all_rows() for name, meta in self._meta.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheDatabase({len(self._caches)} caches, {len(self._meta)} meta-caches)"
