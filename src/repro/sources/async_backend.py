"""The async face of the source layer.

The paper's sources are remote, access-limited interfaces; reaching
thousands of them concurrently is an event-loop job, not a thread-pool
job.  :class:`AsyncBackend` is the protocol the asyncio-native dispatcher
speaks: any backend exposing a coroutine ``alookup(binding) -> rows``
(and optionally a batched ``alookup_many``) is awaited natively on the
loop — :class:`~repro.sources.http.HTTPBackend` is the shipping example.

Every existing *sync* backend (memory / sqlite / callable / flaky) keeps
working unchanged: :func:`as_async_backend` wraps it in an
:class:`AsyncBackendAdapter` that runs the blocking ``lookup`` on an
executor, so the event loop never blocks on a slow read.  The adapter is
a pure transport — same rows, same call counts — which is what keeps the
async dispatcher inside the cross-dispatcher equivalence contract.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from typing import FrozenSet, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.sources.backend import SourceBackend

Row = Tuple[object, ...]
Binding = Tuple[object, ...]


@runtime_checkable
class AsyncBackend(Protocol):
    """A backend whose reads are coroutines (awaited on the event loop)."""

    async def alookup(self, binding: Binding) -> FrozenSet[Row]:
        """Rows whose input arguments equal ``binding``."""
        ...  # pragma: no cover - protocol

    async def alookup_many(self, bindings: Sequence[Binding]) -> List[FrozenSet[Row]]:
        """Answer a batch of bindings; one result per binding, in order."""
        ...  # pragma: no cover - protocol


class AsyncBackendAdapter:
    """Make any sync :class:`SourceBackend` awaitable.

    The blocking ``lookup`` runs on ``executor`` (or the loop's default
    executor when None) via ``run_in_executor``, so a slow sync read —
    sqlite, a latency-injecting callable, an injected fault's sleep —
    parks a pool thread, not the event loop.
    """

    def __init__(self, backend: SourceBackend, executor: Optional[Executor] = None) -> None:
        self.backend = backend
        self.executor = executor

    async def alookup(self, binding: Binding) -> FrozenSet[Row]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self.executor, self.backend.lookup, tuple(binding))

    async def alookup_many(self, bindings: Sequence[Binding]) -> List[FrozenSet[Row]]:
        loop = asyncio.get_running_loop()
        batch = [tuple(binding) for binding in bindings]
        return await loop.run_in_executor(self.executor, self.backend.lookup_many, batch)


def as_async_backend(
    backend: SourceBackend, executor: Optional[Executor] = None
) -> AsyncBackend:
    """The backend itself when it is already async, else an adapter over it."""
    if hasattr(backend, "alookup"):
        return backend  # type: ignore[return-value]
    return AsyncBackendAdapter(backend, executor)
