"""The resilience layer: deterministic fault injection, retries, breakers.

The paper's execution model assumes every access eventually succeeds; a
production deployment cannot.  This module supplies the three pieces the
runtime uses to keep a query alive when a source flakes, times out or goes
down mid-execution:

* :class:`FlakyBackend` — a decorator over any
  :class:`~repro.sources.backend.SourceBackend` that injects faults from a
  *deterministic, seeded* :class:`FaultSchedule`.  Whether (and how) an
  access fails depends only on ``(seed, relation, binding, attempt)``, never
  on thread interleaving or process hash salt, so fuzzing runs are exactly
  reproducible and a fault-free schedule (all rates zero) is byte-identical
  to the undecorated backend.
* :class:`RetryPolicy` — bounded attempts with exponential backoff.  The
  backoff is *priced through the run's authoritative clock*: simulated
  dispatchers charge it to the simulated clock, the real thread-pool
  dispatcher actually sleeps.
* :class:`CircuitBreaker` — the classic closed → open → half-open machine,
  one per relation.  After ``failure_threshold`` consecutive failures the
  breaker opens: further accesses to the relation are short-circuited (and
  the scheduling policies stop offering its bindings) until ``cooldown``
  has elapsed on the run's clock, at which point one probe is let through.

:class:`ResilienceContext` ties the three together for one kernel run: the
dispatchers route every source read through :meth:`ResilienceContext.
perform`, which owns the retry loop, the breaker bookkeeping, timeout
classification and the :class:`RetryStats` counters that end up on the
:class:`~repro.engine.result.Result`.
"""

from __future__ import annotations

import enum
import hashlib
import threading
import time
from dataclasses import dataclass, replace
from typing import Awaitable, Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.exceptions import AccessError
from repro.sources.backend import SourceBackend

Row = Tuple[object, ...]
Binding = Tuple[object, ...]


# -- failure taxonomy -----------------------------------------------------------
class SourceFault(AccessError):
    """A source access failed for an operational (non-logic) reason.

    ``retryable`` distinguishes transient conditions (worth retrying) from
    permanent ones (the relation is down for the rest of the run).
    """

    retryable: bool = True

    def __init__(self, relation: str, binding: Binding, detail: str = "") -> None:
        self.relation = relation
        self.binding = tuple(binding)
        self.detail = detail
        super().__init__(
            f"{type(self).__name__} accessing {relation!r} with {self.binding!r}"
            + (f": {detail}" if detail else "")
        )


class TransientSourceError(SourceFault):
    """The source hiccuped (connection reset, 5xx, ...); a retry may succeed."""

    retryable = True


class SourceTimeoutError(SourceFault):
    """The access took longer than the configured (or injected) timeout."""

    retryable = True


class SourceUnavailableError(SourceFault):
    """The source is down for good; no retry within this run can succeed."""

    retryable = False


class CircuitOpenError(SourceFault):
    """The relation's circuit breaker rejected the access without trying it."""

    retryable = False


# -- deterministic fault injection ----------------------------------------------
def _stable_rng_seed(*parts: object) -> int:
    """A process-independent seed for ``random``-free fault planning.

    Python's builtin ``hash`` is salted per process; fault schedules must
    not be, or two fuzzing runs (or the two processes of a differential
    comparison) would inject different faults.
    """
    digest = hashlib.blake2b(repr(parts).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class _StableRandom:
    """A tiny splitmix64-style generator seeded from a stable digest.

    Only ``random()`` (uniform in [0, 1)) is needed; using our own generator
    keeps fault plans identical across Python versions regardless of
    ``random.Random``'s internal seeding of non-int objects.
    """

    def __init__(self, seed: int) -> None:
        self._state = seed & 0xFFFFFFFFFFFFFFFF

    def random(self) -> float:
        self._state = (self._state + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        z = z ^ (z >> 31)
        return (z >> 11) / float(1 << 53)


@dataclass(frozen=True)
class FaultSchedule:
    """A seeded, deterministic plan of which accesses fail, and how.

    For every ``(relation, binding)`` pair the schedule derives — purely
    from ``seed`` — a sequence of *leading faults* (transient errors and
    timeouts the first attempts hit before one succeeds) and whether the
    eventually-successful call is *slow*.  A permanent outage
    (``outage_after``) kills the backend after that many total lookups.

    Attributes:
        seed: the schedule's seed; same seed, same faults, every run.
        transient_rate: probability that an attempt hits a transient error.
        timeout_rate: probability that an attempt hits an injected timeout.
        slow_rate: probability that the successful call is slow.
        slow_seconds: real ``time.sleep`` injected into slow calls.
        outage_after: total lookups (across all bindings) after which the
            source is permanently down; ``None`` disables the outage.
        max_consecutive: cap on leading faults per binding, so a fault rate
            below 1.0 always leaves the binding eventually servable.
    """

    seed: int = 0
    transient_rate: float = 0.0
    timeout_rate: float = 0.0
    slow_rate: float = 0.0
    slow_seconds: float = 0.0
    outage_after: Optional[int] = None
    max_consecutive: int = 3

    def __post_init__(self) -> None:
        for name in ("transient_rate", "timeout_rate", "slow_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"FaultSchedule.{name} must be in [0, 1], got {rate!r}")
        if self.max_consecutive < 0:
            raise ValueError("FaultSchedule.max_consecutive must be >= 0")

    @property
    def fault_free(self) -> bool:
        """True when the schedule can never inject anything."""
        return (
            self.transient_rate == 0.0
            and self.timeout_rate == 0.0
            and self.slow_rate == 0.0
            and self.outage_after is None
        )

    def plan_for(self, relation: str, binding: Binding) -> Tuple[Tuple[str, ...], bool]:
        """The (leading fault kinds, slow?) plan of one binding's attempts."""
        rng = _StableRandom(_stable_rng_seed(self.seed, relation, tuple(binding)))
        faults: List[str] = []
        while len(faults) < self.max_consecutive:
            roll = rng.random()
            if roll < self.transient_rate:
                faults.append("transient")
            elif roll < self.transient_rate + self.timeout_rate:
                faults.append("timeout")
            else:
                break
        slow = rng.random() < self.slow_rate
        return tuple(faults), slow

    def with_seed(self, seed: int) -> "FaultSchedule":
        return replace(self, seed=seed)


class FlakyBackend(SourceBackend):
    """Wraps any backend with a deterministic fault schedule.

    Attempt counters are kept per binding (under a lock — the real
    dispatcher reads from worker threads), so the *n*-th attempt at a
    binding deterministically hits the *n*-th planned fault regardless of
    what other bindings or threads are doing.  With an all-zero schedule
    the wrapper is pass-through: same rows, same call counts, no sleeps.
    """

    kind = "flaky"

    def __init__(self, inner: SourceBackend, schedule: FaultSchedule) -> None:
        self.inner = inner
        self.schedule = schedule
        self.schema = inner.schema
        #: The in-memory instance when the inner backend has one (keeps
        #: SourceWrapper's back-compat ``instance`` attribute working).
        self.instance = getattr(inner, "instance", None)
        self._lock = threading.Lock()
        self._attempts: Dict[Binding, int] = {}
        self._total_lookups = 0
        self._closed = False

    def lookup(self, binding: Binding) -> FrozenSet[Row]:
        if self.schedule.fault_free:
            # A schedule that can never inject anything is pure passthrough:
            # no fault planning, no attempt counting, no lock — the
            # zero-fault overhead of the resilience stack stays negligible.
            return self.inner.lookup(tuple(binding))
        binding = tuple(binding)
        relation = self.schema.name
        with self._lock:
            attempt = self._attempts.get(binding, 0)
            self._attempts[binding] = attempt + 1
            self._total_lookups += 1
            total = self._total_lookups
        outage = self.schedule.outage_after
        if outage is not None and total > outage:
            raise SourceUnavailableError(relation, binding, "permanent outage injected")
        faults, slow = self.schedule.plan_for(relation, binding)
        if attempt < len(faults):
            kind = faults[attempt]
            if kind == "timeout":
                raise SourceTimeoutError(relation, binding, "injected timeout")
            raise TransientSourceError(relation, binding, "injected transient fault")
        if slow and self.schedule.slow_seconds > 0:
            time.sleep(self.schedule.slow_seconds)
        return self.inner.lookup(binding)

    def lookup_many(self, bindings: Sequence[Binding]) -> List[FrozenSet[Row]]:
        # Each binding must be individually faultable, so no bulk delegation.
        return [self.lookup(binding) for binding in bindings]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.inner.close()


def make_flaky(registry: object, schedule: FaultSchedule) -> None:
    """Alias for :meth:`~repro.sources.wrapper.SourceRegistry.inject_faults`
    for callers holding only this module (avoids the circular import)."""
    registry.inject_faults(schedule)  # type: ignore[attr-defined]


# -- retry policy ----------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with capped exponential backoff.

    ``max_attempts`` counts the initial try: 3 means one try plus two
    retries.  The delay before retry ``n`` (1-based) is
    ``min(base_delay * multiplier ** (n - 1), max_delay)``.  Delays are
    deterministic (no jitter) so simulated runs stay reproducible.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("RetryPolicy.max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.multiplier < 1:
            raise ValueError("RetryPolicy delays must be >= 0 and multiplier >= 1")

    def delay_before(self, retry: int) -> float:
        """Backoff before the ``retry``-th retry (1-based)."""
        if retry < 1:
            return 0.0
        return min(self.base_delay * self.multiplier ** (retry - 1), self.max_delay)

    def total_backoff(self, retries: int) -> float:
        """Cumulative backoff of the first ``retries`` retries."""
        return sum(self.delay_before(n) for n in range(1, retries + 1))


# -- circuit breaker -------------------------------------------------------------
class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning of one relation's circuit breaker.

    Attributes:
        failure_threshold: consecutive failures that trip a closed breaker.
        cooldown: clock time an open breaker waits before letting a
            half-open probe through.
        half_open_probes: concurrent probes allowed while half-open.
    """

    failure_threshold: int = 5
    cooldown: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("BreakerConfig.failure_threshold must be >= 1")
        if self.cooldown < 0:
            raise ValueError("BreakerConfig.cooldown must be >= 0")
        if self.half_open_probes < 1:
            raise ValueError("BreakerConfig.half_open_probes must be >= 1")


class CircuitBreaker:
    """Closed → open → half-open, on an injected clock.

    The clock is whatever the run's dispatcher is authoritative for — the
    simulated clock of the sequential/discrete-event dispatchers, the wall
    clock of the thread-pool dispatcher — so cool-downs are priced in the
    same units as everything else in the run.
    """

    def __init__(self, config: BreakerConfig, clock: Callable[[], float]) -> None:
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        #: How many times the breaker tripped open (closed/half-open → open).
        self.trips = 0

    @property
    def state(self) -> BreakerState:
        with self._lock:
            return self._state

    def blocked(self) -> bool:
        """Non-mutating probe used by offer passes: is the relation
        currently excluded (open, cool-down not yet elapsed)?"""
        with self._lock:
            return (
                self._state is BreakerState.OPEN
                and self._clock() - self._opened_at < self.config.cooldown
            )

    def try_acquire(self) -> bool:
        """Ask permission to perform one access (mutating).

        Closed: always granted.  Open: denied until the cool-down elapses,
        then the breaker half-opens and grants probe slots.  Half-open:
        granted while probe slots remain.

        The closed check is lock-free (a stale read merely lets one extra
        access through while another thread is tripping the breaker — the
        standard benign race of circuit breakers); state transitions are
        serialized.
        """
        if self._state is BreakerState.CLOSED:
            return True
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                if self._clock() - self._opened_at < self.config.cooldown:
                    return False
                self._state = BreakerState.HALF_OPEN
                self._probes_in_flight = 0
            if self._probes_in_flight < self.config.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False

    def record_success(self) -> None:
        if self._state is BreakerState.CLOSED and not self._consecutive_failures:
            return  # hot path: nothing to reset
        with self._lock:
            self._consecutive_failures = 0
            if self._state is BreakerState.HALF_OPEN:
                self._state = BreakerState.CLOSED
                self._probes_in_flight = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state is BreakerState.HALF_OPEN:
                self._trip()
            elif (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.config.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self.trips += 1


# -- the per-run context ---------------------------------------------------------
@dataclass(frozen=True)
class ResilienceConfig:
    """The knobs one execution turns on: retry, timeout, breaker."""

    retry: Optional[RetryPolicy] = None
    timeout: Optional[float] = None
    breaker: Optional[BreakerConfig] = None


@dataclass
class RetryStats:
    """Aggregate resilience accounting of one execution.

    Attributes:
        attempts: source reads attempted, including retries.
        retries: attempts beyond the first, across all accesses.
        failures: accesses that permanently failed (retries exhausted,
            non-retryable fault, or short-circuited by an open breaker).
        transient_faults: transient errors observed (retried or not).
        timeouts: timed-out attempts observed (injected or measured).
        breaker_trips: times a circuit breaker opened during the run.
        short_circuited: accesses rejected by an open breaker untried.
        refunded: budget grants returned because the access failed.
        backoff_seconds: total retry backoff charged to the run's clock.
    """

    attempts: int = 0
    retries: int = 0
    failures: int = 0
    transient_faults: int = 0
    timeouts: int = 0
    breaker_trips: int = 0
    short_circuited: int = 0
    refunded: int = 0
    backoff_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "failures": self.failures,
            "transient_faults": self.transient_faults,
            "timeouts": self.timeouts,
            "breaker_trips": self.breaker_trips,
            "short_circuited": self.short_circuited,
            "refunded": self.refunded,
            "backoff_seconds": round(self.backoff_seconds, 6),
        }


@dataclass(frozen=True)
class PerformOutcome:
    """What one resilient read produced (or didn't).

    ``fault`` is None on success; on failure ``rows`` is empty and the
    fault explains why.  ``attempts`` counts source reads actually made
    (0 when the breaker short-circuited the access); ``backoff`` is the
    retry delay to charge to a simulated clock (the real dispatcher has
    already slept it).
    """

    rows: FrozenSet[Row]
    read_seconds: float
    attempts: int
    backoff: float
    fault: Optional[SourceFault] = None

    @property
    def failed(self) -> bool:
        return self.fault is not None


class ResilienceContext:
    """Failure handling for one kernel run, shared by its dispatcher(s).

    The context is cheap enough to always exist: with no retry policy, no
    timeout and no breaker config it only adds a try/except around each
    backend read — faults are then reported after a single attempt instead
    of killing the run, which is the new baseline semantics.

    ``clock`` is bound by the kernel to the dispatcher's authoritative
    clock; ``real_sleep`` tells :meth:`perform` whether to actually sleep
    retry backoffs (thread-pool dispatch) or merely report them for the
    caller to charge to a simulated clock.
    """

    def __init__(
        self,
        config: Optional[ResilienceConfig] = None,
        clock: Callable[[], float] = lambda: 0.0,
        real_sleep: bool = False,
    ) -> None:
        self.config = config if config is not None else ResilienceConfig()
        self.clock = clock
        self.real_sleep = real_sleep
        self.stats = RetryStats()
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}
        #: Relations that permanently failed at least one access this run.
        self.failed_relations: Set[str] = set()
        #: Relations observed permanently down (no further reads attempted).
        self._dead: Set[str] = set()

    # -- wiring ---------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float], real_sleep: bool) -> None:
        self.clock = clock
        self.real_sleep = real_sleep

    def breaker_for(self, relation: str) -> Optional[CircuitBreaker]:
        if self.config.breaker is None:
            return None
        with self._lock:
            breaker = self._breakers.get(relation)
            if breaker is None:
                breaker = CircuitBreaker(self.config.breaker, self.clock)
                self._breakers[relation] = breaker
            return breaker

    def breakers(self) -> Dict[str, CircuitBreaker]:
        with self._lock:
            return dict(self._breakers)

    # -- offer-side exclusion --------------------------------------------------
    def excluded(self, relation: str) -> bool:
        """True while the relation must not be offered: its breaker is open
        (cool-down pending) or the source is known permanently down."""
        with self._lock:
            if relation in self._dead:
                return True
            breaker = self._breakers.get(relation)
        return breaker is not None and breaker.blocked()

    # -- the resilient read ----------------------------------------------------
    def perform(
        self, relation: str, binding: Binding, read: Callable[[], FrozenSet[Row]]
    ) -> PerformOutcome:
        """Run one backend read under retry/timeout/breaker policy.

        Never raises for operational faults — the outcome carries them —
        so dispatchers have one uniform failure path.  Non-fault exceptions
        (programming errors) propagate unchanged.

        The hot path (healthy source, closed breaker) is engineered for
        near-zero overhead: dead-set and breaker reads are lock-free (the
        GIL makes them safe; a stale read is the standard benign breaker
        race), stats are flushed under one lock acquisition per access,
        and reads are only timed when someone consumes the timing (a
        configured timeout, or the thread-pool dispatcher's sequential
        accounting).
        """
        breaker: Optional[CircuitBreaker] = None
        if self.config.breaker is not None:
            breaker = self._breakers.get(relation) or self.breaker_for(relation)
        dead = bool(self._dead) and relation in self._dead
        if dead or (breaker is not None and not breaker.try_acquire()):
            fault = (
                SourceUnavailableError(relation, binding, "source marked down")
                if dead
                else CircuitOpenError(relation, binding, "circuit breaker open")
            )
            with self._lock:
                self.stats.short_circuited += 1
                self.stats.failures += 1
                self.failed_relations.add(relation)
            return PerformOutcome(frozenset(), 0.0, attempts=0, backoff=0.0, fault=fault)

        retry = self.config.retry
        max_attempts = retry.max_attempts if retry is not None else 1
        timeout = self.config.timeout
        time_reads = timeout is not None or self.real_sleep
        attempts = 0
        retries = 0
        backoff = 0.0
        while True:
            attempts += 1
            started = time.perf_counter() if time_reads else 0.0
            fault: Optional[SourceFault] = None
            try:
                rows = read()
            except SourceFault as error:
                fault = error
            seconds = (time.perf_counter() - started) if time_reads else 0.0
            if fault is None and timeout is not None and seconds > timeout:
                fault = SourceTimeoutError(
                    relation, binding, f"read took {seconds:.4f}s > timeout {timeout:.4f}s"
                )
            if fault is None:
                if breaker is not None:
                    breaker.record_success()
                with self._lock:
                    self.stats.attempts += attempts
                    self.stats.retries += retries
                    self.stats.backoff_seconds += backoff
                return PerformOutcome(rows, seconds, attempts=attempts, backoff=backoff)

            # One attempt failed: classify, feed the breaker, decide on retry.
            tripped = False
            if breaker is not None:
                before = breaker.trips
                breaker.record_failure()
                tripped = breaker.trips > before
            with self._lock:
                if isinstance(fault, SourceTimeoutError):
                    self.stats.timeouts += 1
                elif isinstance(fault, TransientSourceError):
                    self.stats.transient_faults += 1
                if tripped:
                    self.stats.breaker_trips += 1
                if not fault.retryable:
                    self._dead.add(relation)
            if fault.retryable and not tripped and attempts < max_attempts:
                delay = retry.delay_before(attempts) if retry is not None else 0.0
                retries += 1
                backoff += delay
                if self.real_sleep and delay > 0:
                    time.sleep(delay)
                continue
            with self._lock:
                self.stats.attempts += attempts
                self.stats.retries += retries
                self.stats.backoff_seconds += backoff
                self.stats.failures += 1
                self.failed_relations.add(relation)
            return PerformOutcome(
                frozenset(), 0.0, attempts=attempts, backoff=backoff, fault=fault
            )

    async def aperform(
        self,
        relation: str,
        binding: Binding,
        aread: Callable[[], Awaitable[FrozenSet[Row]]],
    ) -> PerformOutcome:
        """:meth:`perform` for coroutine reads: same policy, awaited I/O.

        The retry/timeout/breaker decision tree is kept line-for-line
        identical to the sync path so the two dispatchers cannot drift;
        only the read is awaited and retry backoff uses ``asyncio.sleep``
        (the async dispatcher always runs on the wall clock, so backoff is
        really waited, never charged to a simulation).
        """
        import asyncio

        breaker: Optional[CircuitBreaker] = None
        if self.config.breaker is not None:
            breaker = self._breakers.get(relation) or self.breaker_for(relation)
        dead = bool(self._dead) and relation in self._dead
        if dead or (breaker is not None and not breaker.try_acquire()):
            fault = (
                SourceUnavailableError(relation, binding, "source marked down")
                if dead
                else CircuitOpenError(relation, binding, "circuit breaker open")
            )
            with self._lock:
                self.stats.short_circuited += 1
                self.stats.failures += 1
                self.failed_relations.add(relation)
            return PerformOutcome(frozenset(), 0.0, attempts=0, backoff=0.0, fault=fault)

        retry = self.config.retry
        max_attempts = retry.max_attempts if retry is not None else 1
        timeout = self.config.timeout
        time_reads = timeout is not None or self.real_sleep
        attempts = 0
        retries = 0
        backoff = 0.0
        while True:
            attempts += 1
            started = time.perf_counter() if time_reads else 0.0
            fault: Optional[SourceFault] = None
            try:
                rows = await aread()
            except SourceFault as error:
                fault = error
            seconds = (time.perf_counter() - started) if time_reads else 0.0
            if fault is None and timeout is not None and seconds > timeout:
                fault = SourceTimeoutError(
                    relation, binding, f"read took {seconds:.4f}s > timeout {timeout:.4f}s"
                )
            if fault is None:
                if breaker is not None:
                    breaker.record_success()
                with self._lock:
                    self.stats.attempts += attempts
                    self.stats.retries += retries
                    self.stats.backoff_seconds += backoff
                return PerformOutcome(rows, seconds, attempts=attempts, backoff=backoff)

            tripped = False
            if breaker is not None:
                before = breaker.trips
                breaker.record_failure()
                tripped = breaker.trips > before
            with self._lock:
                if isinstance(fault, SourceTimeoutError):
                    self.stats.timeouts += 1
                elif isinstance(fault, TransientSourceError):
                    self.stats.transient_faults += 1
                if tripped:
                    self.stats.breaker_trips += 1
                if not fault.retryable:
                    self._dead.add(relation)
            if fault.retryable and not tripped and attempts < max_attempts:
                delay = retry.delay_before(attempts) if retry is not None else 0.0
                retries += 1
                backoff += delay
                if delay > 0:
                    await asyncio.sleep(delay)
                continue
            with self._lock:
                self.stats.attempts += attempts
                self.stats.retries += retries
                self.stats.backoff_seconds += backoff
                self.stats.failures += 1
                self.failed_relations.add(relation)
            return PerformOutcome(
                frozenset(), 0.0, attempts=attempts, backoff=backoff, fault=fault
            )

    # -- bookkeeping hooks used by dispatchers ----------------------------------
    def note_refund(self, count: int = 1) -> None:
        with self._lock:
            self.stats.refunded += count

    def snapshot_failed_relations(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self.failed_relations))


#: Shared default used by CLI/benchmarks when faults are injected without an
#: explicit retry policy: three attempts with fast, capped backoff.
DEFAULT_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, multiplier=2.0, max_delay=0.1)
